//! Diagnostics for protocol violations inside application processes.
//!
//! Every process in this crate is a `(state, resume)` state machine; an
//! unexpected combination means the application protocol was broken —
//! by a kernel bug, a truncated run resumed with stale state, or an
//! event-ordering bug. The panic must therefore carry enough context to
//! debug a simulation of thousands of processes: *when* (simulated
//! time), *where* (node), and *who* (pid + process label), not just the
//! bare state pair.

use suprenum::{ProcCtx, Resume};

/// Panics with a fully attributed protocol-violation report.
///
/// `who` is the process's own identity (e.g. `"servant 3"`); `state`
/// is its current protocol state. Always panics — the process cannot
/// continue from a state it has no transition for, and silently
/// ignoring the resume would corrupt the measurement.
///
/// # Panics
///
/// Always.
#[cold]
pub fn protocol_violation(
    ctx: &ProcCtx,
    who: &str,
    state: &dyn std::fmt::Debug,
    why: &Resume,
) -> ! {
    panic!(
        "protocol violation at t={} on {} ({}): {who} in state {state:?} cannot handle {why:?}",
        ctx.now, ctx.node, ctx.pid
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;
    use suprenum::{NodeId, ProcessId};

    #[test]
    fn report_carries_time_node_and_pid() {
        let ctx = ProcCtx {
            pid: ProcessId::new(7),
            node: NodeId::new(3),
            now: SimTime::from_millis(250),
        };
        let err = std::panic::catch_unwind(|| {
            protocol_violation(&ctx, "servant 2", &"WaitJobRecv", &Resume::Start)
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("0.250000s"), "no sim time in {msg:?}");
        assert!(msg.contains("servant 2"), "no identity in {msg:?}");
        assert!(msg.contains("WaitJobRecv"), "no state in {msg:?}");
        assert!(msg.contains("Start"), "no resume in {msg:?}");
    }
}
