//! Message formats between master, servants and agents.

use raytracer::color::Color;

/// A job: a bundle of one or more rays (pixels) to trace (paper §4.2:
/// "jobs assigned to the servants consist of bundles of one or more
/// rays").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMsg {
    /// Job sequence number (carried in event parameters for causality
    /// checks).
    pub job_id: u32,
    /// Linear pixel indices to trace.
    pub pixels: Vec<u32>,
}

impl JobMsg {
    /// Wire size: header plus 4 bytes per pixel index.
    pub fn wire_bytes(&self) -> u32 {
        24 + 4 * self.pixels.len() as u32
    }
}

/// A servant's startup notification: sent once after initialization so
/// the master does not flood mailboxes of servants that are still
/// reading the scene description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyMsg {
    /// Index of the now-ready servant.
    pub servant: u32,
}

impl ReadyMsg {
    /// Wire size of the notification.
    pub fn wire_bytes(&self) -> u32 {
        16
    }
}

/// A result: the computed colours for one job's pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMsg {
    /// The job this answers.
    pub job_id: u32,
    /// Index of the servant that computed it (1-based, matching node
    /// numbers).
    pub servant: u32,
    /// `(linear pixel index, colour)` pairs.
    pub pixels: Vec<(u32, Color)>,
}

impl ResultMsg {
    /// Wire size: header plus index + RGB per pixel.
    pub fn wire_bytes(&self) -> u32 {
        24 + 16 * self.pixels.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_scale_with_bundle() {
        let job = JobMsg {
            job_id: 1,
            pixels: (0..50).collect(),
        };
        assert_eq!(job.wire_bytes(), 24 + 200);
        let result = ResultMsg {
            job_id: 1,
            servant: 3,
            pixels: (0..50).map(|i| (i, Color::BLACK)).collect(),
        };
        assert_eq!(result.wire_bytes(), 24 + 800);
        // Bundling 50 rays into one message is far cheaper on the wire
        // than 50 single-ray messages.
        let single = JobMsg {
            job_id: 1,
            pixels: vec![0],
        };
        assert!(job.wire_bytes() < 50 * single.wire_bytes());
    }
}
