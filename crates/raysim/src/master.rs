//! The master process (paper Figure 6, left).
//!
//! The master administrates the work: it keeps unfinished pixels in a
//! queue, assigns jobs to servants under window flow control
//! ("initially the master has a fixed number of credits from each
//! servant … with each result the master gets one credit back"),
//! collects results, and writes contiguous pixel stretches to the
//! picture file in correct order.
//!
//! Its cycle follows the paper exactly: *Distribute Jobs* → *Send Jobs*
//! (as many as credits and the pixel queue allow) → *Wait for Results* →
//! *Receive Results* → (*Write Pixels* when a stretch is ready) → next
//! *Distribute Jobs*. When the last pixel is written the master exits —
//! and termination of the initial process terminates the application.

use std::sync::Arc;

use raytracer::Framebuffer;
use suprenum::{Action, Message, NodeId, ProcCtx, Process, ProcessId, Resume};

use crate::agent::Agent;
use crate::config::AppConfig;
use crate::context::{AgentPool, AppStats, RenderContext, Shared};
use crate::pixels::PixelLedger;
use crate::protocol::{JobMsg, ReadyMsg, ResultMsg};
use crate::servant::Servant;
use crate::tokens;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MState {
    Boot,
    InitCompute,
    Spawning,
    AwaitReady,
    DistributeEmit,
    DistributeCompute,
    SendEmit,
    SendCompute,
    SendBlocked,
    SendSpawnAgent,
    SendSignal,
    SendYield,
    SendEmitEnd,
    WaitEmit,
    WaitRecv,
    ReceiveEmit,
    ReceiveCompute,
    WriteEmit,
    WriteDisk,
    WriteEmitEnd,
}

/// The master process.
pub struct Master {
    cfg: Arc<AppConfig>,
    ctx: Arc<RenderContext>,
    stats: Shared<AppStats>,
    fb: Shared<Framebuffer>,
    pool: Shared<AgentPool>,
    ledger: PixelLedger,
    state: MState,
    servants: Vec<ProcessId>,
    credits: Vec<u32>,
    rr_cursor: usize,
    next_job_id: u32,
    cycle: u32,
    results_outstanding: u32,
    ready_servants: u32,
    refill_pixels: u32,
    last_sent_job: u32,
    pending_job: Option<(usize, JobMsg)>,
    pending_result: Option<ResultMsg>,
    pending_write: Vec<(u32, raytracer::Color)>,
}

impl Master {
    /// Creates the master. `fb` receives the assembled image; `stats`
    /// collects application counters.
    pub fn new(
        cfg: Arc<AppConfig>,
        ctx: Arc<RenderContext>,
        stats: Shared<AppStats>,
        fb: Shared<Framebuffer>,
    ) -> Box<Master> {
        let ledger = PixelLedger::new(cfg.total_pixels(), cfg.pixel_queue_capacity);
        Box::new(Master {
            pool: AgentPool::new(1),
            ledger,
            state: MState::Boot,
            servants: Vec::new(),
            credits: Vec::new(),
            rr_cursor: 0,
            next_job_id: 0,
            cycle: 0,
            results_outstanding: 0,
            ready_servants: 0,
            refill_pixels: 0,
            last_sent_job: 0,
            pending_job: None,
            pending_result: None,
            pending_write: Vec::new(),
            cfg,
            ctx,
            stats,
            fb,
        })
    }

    fn emit(&self, token: u16, param: u32) -> Action {
        Action::Emit { token, param }
    }

    /// Begins the Distribute Jobs phase of a new cycle.
    fn distribute(&mut self) -> Action {
        self.cycle += 1;
        self.state = MState::DistributeEmit;
        self.emit(tokens::DISTRIBUTE_JOBS_BEGIN, self.cycle)
    }

    /// Picks the next servant with credit (round-robin) and builds its
    /// job, or returns `None` when nothing can be sent.
    fn try_make_job(&mut self) -> Option<(usize, JobMsg)> {
        if self.ledger.assignable() == 0 {
            return None;
        }
        let n = self.servants.len();
        for k in 0..n {
            let idx = (self.rr_cursor + k) % n;
            if self.credits[idx] > 0 {
                let pixels = self.ledger.assign(self.cfg.bundle_size);
                if pixels.is_empty() {
                    return None;
                }
                self.credits[idx] -= 1;
                self.rr_cursor = (idx + 1) % n;
                let job_id = self.next_job_id;
                self.next_job_id += 1;
                return Some((idx, JobMsg { job_id, pixels }));
            }
        }
        None
    }

    fn write_ready(&self) -> bool {
        let contiguous = self.ledger.contiguous_ready();
        contiguous >= self.cfg.write_chunk
            || (self.cfg.eager_writeback
                && contiguous > 0
                && self.results_outstanding == 0
                && self.ledger.assignable() == 0)
    }

    /// The send-or-wait decision after Distribute Jobs (and after each
    /// completed send).
    fn send_or_wait(&mut self) -> Action {
        if let Some(job) = self.try_make_job() {
            let param = job.1.job_id;
            self.pending_job = Some(job);
            self.state = MState::SendEmit;
            return self.emit(tokens::SEND_JOBS_BEGIN, param);
        }
        // Under eager write-back this state is unreachable: the
        // fallback flush in `write_ready` drains the queue before the
        // master can run out of both jobs and expected results. Under
        // strict write-back a residual tail shorter than the chunk
        // leaves exactly this state, and the master waits for a result
        // that will never come — the deadlock the model checker
        // predicts (AN-MODEL-001), reproduced rather than asserted
        // away.
        assert!(
            !self.cfg.eager_writeback || self.results_outstanding > 0,
            "master has nothing to send and nothing to wait for — pixel bookkeeping bug"
        );
        self.state = MState::WaitEmit;
        self.emit(tokens::WAIT_RESULTS_BEGIN, 0)
    }

    /// After Receive Results (plus any write): write a ready stretch or
    /// start the next cycle — or exit when the image is complete.
    fn after_receive(&mut self) -> Action {
        if self.write_ready() {
            self.pending_write = self.ledger.take_writable();
            self.state = MState::WriteEmit;
            return self.emit(tokens::WRITE_PIXELS_BEGIN, self.pending_write.len() as u32);
        }
        if self.ledger.is_complete() {
            // Terminating the initial process terminates the whole
            // application (paper §2.2) — no shutdown protocol needed.
            return Action::Exit;
        }
        self.distribute()
    }

    /// Version-specific job delivery after the Send Jobs admin compute.
    fn deliver_job(&mut self, own_pid: ProcessId) -> Action {
        let (servant_idx, job) = self.pending_job.take().expect("no job to deliver");
        self.last_sent_job = job.job_id;
        let dst = self.servants[servant_idx];
        let bytes = job.wire_bytes();
        let msg = Message::new(own_pid, bytes, job);
        self.stats.borrow_mut().jobs_sent += 1;
        self.results_outstanding += 1;
        if self.cfg.version.master_agents() {
            // Designate a free agent by "setting a shared variable";
            // "if no free agent is available a new agent is created".
            let designated = {
                let mut pool = self.pool.borrow_mut();
                pool.queue.push_back((dst, msg));
                pool.free.pop()
            };
            match designated {
                Some(idx) => {
                    let cond = self.pool.borrow().agent_cond(idx);
                    self.state = MState::SendSignal;
                    Action::SignalCond(cond)
                }
                None => {
                    let (index, body) = {
                        let mut pool = self.pool.borrow_mut();
                        let index = pool.total_agents;
                        pool.total_agents += 1;
                        (index, Agent::new(self.pool.clone(), index))
                    };
                    let mut stats = self.stats.borrow_mut();
                    stats.master_pool_peak = stats.master_pool_peak.max(index + 1);
                    self.state = MState::SendSpawnAgent;
                    Action::Spawn {
                        node: NodeId::new(0),
                        body,
                    }
                }
            }
        } else {
            // Version 1: the master itself performs the mailbox send —
            // and, as the measurements revealed, blocks until the
            // servant's mailbox process is scheduled.
            self.state = MState::SendBlocked;
            Action::MailboxSend { to: dst, msg }
        }
    }

    /// Applies a received result: store pixels, return the credit.
    fn apply_result(&mut self, result: &ResultMsg) {
        let servant_idx = (result.servant - 1) as usize;
        self.credits[servant_idx] += 1;
        self.results_outstanding -= 1;
        self.stats.borrow_mut().results_received += 1;
        for &(idx, color) in &result.pixels {
            self.ledger.complete(idx, color);
        }
    }
}

impl Process for Master {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (MState::Boot, Resume::Start) => {
                self.state = MState::InitCompute;
                Action::Compute(self.cfg.master_init)
            }
            (MState::InitCompute, Resume::ComputeDone) => {
                self.state = MState::Spawning;
                let body = Servant::new(
                    1,
                    self.cfg.clone(),
                    self.ctx.clone(),
                    self.stats.clone(),
                    ctx.pid,
                );
                Action::Spawn {
                    node: NodeId::new(1),
                    body,
                }
            }
            (MState::Spawning, Resume::Spawned(pid)) => {
                self.servants.push(pid);
                self.credits.push(self.cfg.window);
                let next = self.servants.len() as u32 + 1;
                if next <= self.cfg.servants as u32 {
                    let body = Servant::new(
                        next,
                        self.cfg.clone(),
                        self.ctx.clone(),
                        self.stats.clone(),
                        ctx.pid,
                    );
                    Action::Spawn {
                        node: NodeId::new(next as u16),
                        body,
                    }
                } else {
                    // Wait until every servant reports ready; otherwise
                    // the first window of jobs floods mailboxes of
                    // still-initializing servants.
                    self.state = MState::AwaitReady;
                    Action::MailboxRecv
                }
            }
            (MState::AwaitReady, Resume::MailboxMsg(msg)) => {
                assert!(
                    msg.payload::<ReadyMsg>().is_some(),
                    "master expected a ready notification before distributing"
                );
                self.ready_servants += 1;
                if self.ready_servants < self.cfg.servants as u32 {
                    self.state = MState::AwaitReady;
                    Action::MailboxRecv
                } else {
                    // The first distribution fills the pixel queue from
                    // scratch.
                    self.refill_pixels = self.ledger.assignable();
                    self.distribute()
                }
            }
            (MState::DistributeEmit, Resume::EmitDone) => {
                let cost = self.cfg.distribute_base
                    + self.cfg.distribute_per_pixel * self.refill_pixels as u64;
                self.refill_pixels = 0;
                self.state = MState::DistributeCompute;
                Action::Compute(cost)
            }
            (MState::DistributeCompute, Resume::ComputeDone) => self.send_or_wait(),
            (MState::SendEmit, Resume::EmitDone) => {
                let pixels = self
                    .pending_job
                    .as_ref()
                    .expect("job pending")
                    .1
                    .pixels
                    .len();
                self.state = MState::SendCompute;
                Action::Compute(self.cfg.send_base + self.cfg.send_per_pixel * pixels as u64)
            }
            (MState::SendCompute, Resume::ComputeDone) => self.deliver_job(ctx.pid),
            (MState::SendBlocked, Resume::Sent) => {
                self.state = MState::SendEmitEnd;
                self.emit(tokens::SEND_JOBS_END, self.last_sent_job)
            }
            (MState::SendSpawnAgent, Resume::Spawned(_)) => {
                // The fresh agent finds its work at boot; relinquish so
                // it (and any freed agents) can run.
                self.state = MState::SendYield;
                Action::Yield
            }
            (MState::SendSignal, Resume::SignalSent) => {
                // "After the indication the master relinquishes the
                // processor and all agents will be scheduled."
                self.state = MState::SendYield;
                Action::Yield
            }
            (MState::SendYield, Resume::Yielded) => {
                self.state = MState::SendEmitEnd;
                self.emit(tokens::SEND_JOBS_END, self.last_sent_job)
            }
            (MState::SendEmitEnd, Resume::EmitDone) => self.send_or_wait(),
            (MState::WaitEmit, Resume::EmitDone) => {
                self.state = MState::WaitRecv;
                Action::MailboxRecv
            }
            (MState::WaitRecv, Resume::MailboxMsg(msg)) => {
                let result = msg
                    .payload::<ResultMsg>()
                    .expect("master expects result messages")
                    .clone();
                let job_id = result.job_id;
                self.pending_result = Some(result);
                self.state = MState::ReceiveEmit;
                self.emit(tokens::RECEIVE_RESULTS_BEGIN, job_id)
            }
            (MState::ReceiveEmit, Resume::EmitDone) => {
                let result = self.pending_result.take().expect("result pending");
                let cost =
                    self.cfg.receive_base + self.cfg.receive_per_pixel * result.pixels.len() as u64;
                self.apply_result(&result);
                self.state = MState::ReceiveCompute;
                Action::Compute(cost)
            }
            (MState::ReceiveCompute, Resume::ComputeDone) => self.after_receive(),
            (MState::WriteEmit, Resume::EmitDone) => {
                let stretch = std::mem::take(&mut self.pending_write);
                let bytes = stretch.len() as u32 * self.cfg.write_bytes_per_pixel;
                {
                    let mut fb = self.fb.borrow_mut();
                    for &(idx, color) in &stretch {
                        fb.set_linear(idx, color);
                    }
                }
                self.refill_pixels += stretch.len() as u32;
                self.stats.borrow_mut().disk_writes += 1;
                self.state = MState::WriteDisk;
                Action::DiskWrite { bytes }
            }
            (MState::WriteDisk, Resume::DiskDone) => {
                self.state = MState::WriteEmitEnd;
                self.emit(tokens::WRITE_PIXELS_END, 0)
            }
            (MState::WriteEmitEnd, Resume::EmitDone) => {
                if self.ledger.is_complete() {
                    Action::Exit
                } else {
                    self.distribute()
                }
            }
            (state, why) => crate::diag::protocol_violation(ctx, "master", &state, &why),
        }
    }

    fn label(&self) -> String {
        "master".to_owned()
    }
}

/// Extra accessors used by tests and analysis.
impl Master {
    /// Pixels written so far.
    pub fn pixels_written(&self) -> u32 {
        self.ledger.written()
    }

    /// The master-side agent pool (for inspection).
    pub fn pool(&self) -> &Shared<AgentPool> {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SceneKind, Version};
    use des::time::SimTime;

    fn setup(version: Version) -> (Box<Master>, ProcCtx) {
        let mut cfg = AppConfig::version(version);
        cfg.scene = SceneKind::Quickstart;
        cfg.width = 8;
        cfg.height = 8;
        cfg.servants = 2;
        let cfg = Arc::new(cfg);
        let ctx = RenderContext::new(&cfg);
        let stats = Shared::new(AppStats::default());
        let fb = Shared::new(Framebuffer::new(cfg.width, cfg.height));
        let master = Master::new(cfg, ctx, stats, fb);
        let pctx = ProcCtx {
            pid: ProcessId::new(0),
            node: NodeId::new(0),
            now: SimTime::ZERO,
        };
        (master, pctx)
    }

    #[test]
    fn boot_spawns_all_servants_then_distributes() {
        let (mut m, ctx) = setup(Version::V1);
        assert!(matches!(m.resume(&ctx, Resume::Start), Action::Compute(_)));
        let a = m.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(a, Action::Spawn { node, .. } if node == NodeId::new(1)));
        let a = m.resume(&ctx, Resume::Spawned(ProcessId::new(10)));
        assert!(matches!(a, Action::Spawn { node, .. } if node == NodeId::new(2)));
        let a = m.resume(&ctx, Resume::Spawned(ProcessId::new(11)));
        // Ready barrier: the master waits for both servants first.
        assert!(matches!(a, Action::MailboxRecv));
        let ready = |i: u32| Message::new(ProcessId::new(9 + i), 16, ReadyMsg { servant: i });
        assert!(matches!(
            m.resume(&ctx, Resume::MailboxMsg(ready(1))),
            Action::MailboxRecv
        ));
        let a = m.resume(&ctx, Resume::MailboxMsg(ready(2)));
        assert!(
            matches!(
                a,
                Action::Emit {
                    token: tokens::DISTRIBUTE_JOBS_BEGIN,
                    param: 1
                }
            ),
            "{a:?}"
        );
    }

    fn pass_ready_barrier(m: &mut Master, ctx: &ProcCtx) {
        for i in 1..=2u32 {
            let msg = Message::new(ProcessId::new(9 + i), 16, ReadyMsg { servant: i });
            m.resume(ctx, Resume::MailboxMsg(msg));
        }
    }

    #[test]
    fn first_cycle_sends_with_window_credits() {
        let (mut m, ctx) = setup(Version::V1);
        m.resume(&ctx, Resume::Start);
        m.resume(&ctx, Resume::ComputeDone);
        m.resume(&ctx, Resume::Spawned(ProcessId::new(10)));
        m.resume(&ctx, Resume::Spawned(ProcessId::new(11)));
        pass_ready_barrier(&mut m, &ctx);
        // Distribute admin compute.
        assert!(matches!(
            m.resume(&ctx, Resume::EmitDone),
            Action::Compute(_)
        ));
        // First send: job 0 to servant 0.
        let a = m.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::SEND_JOBS_BEGIN,
                param: 0
            }
        ));
        assert!(matches!(
            m.resume(&ctx, Resume::EmitDone),
            Action::Compute(_)
        ));
        let a = m.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(a, Action::MailboxSend { to, .. } if to == ProcessId::new(10)));
        // After the send completes: Send Jobs End, then next send goes
        // round-robin to servant 1.
        let a = m.resume(&ctx, Resume::Sent);
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::SEND_JOBS_END,
                ..
            }
        ));
        let a = m.resume(&ctx, Resume::EmitDone);
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::SEND_JOBS_BEGIN,
                param: 1
            }
        ));
        m.resume(&ctx, Resume::EmitDone);
        let a = m.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(a, Action::MailboxSend { to, .. } if to == ProcessId::new(11)));
    }

    #[test]
    fn v2_master_hands_to_agent_pool() {
        let (mut m, ctx) = setup(Version::V2);
        m.resume(&ctx, Resume::Start);
        m.resume(&ctx, Resume::ComputeDone);
        m.resume(&ctx, Resume::Spawned(ProcessId::new(10)));
        m.resume(&ctx, Resume::Spawned(ProcessId::new(11)));
        pass_ready_barrier(&mut m, &ctx);
        m.resume(&ctx, Resume::EmitDone); // distribute compute
        m.resume(&ctx, Resume::ComputeDone); // SJ emit
        m.resume(&ctx, Resume::EmitDone); // send admin compute
                                          // Pool is empty -> spawn the first agent, on the master's node.
        let a = m.resume(&ctx, Resume::ComputeDone);
        assert!(matches!(a, Action::Spawn { node, .. } if node == NodeId::new(0)));
        assert_eq!(m.pool().borrow().total_agents, 1);
        assert_eq!(m.pool().borrow().queue.len(), 1);
        // The fresh agent will find the queued work at boot, so the
        // master just relinquishes and ends the send.
        assert!(matches!(
            m.resume(&ctx, Resume::Spawned(ProcessId::new(20))),
            Action::Yield
        ));
        let a = m.resume(&ctx, Resume::Yielded);
        assert!(matches!(
            a,
            Action::Emit {
                token: tokens::SEND_JOBS_END,
                ..
            }
        ));
    }
}
