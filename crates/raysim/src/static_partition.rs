//! Static ray partitioning — the baseline the paper's §4.1 argues
//! against.
//!
//! "With ray partitioning, it may either be predetermined which rays are
//! processed by a particular processor (static ray partitioning) … The
//! performance of static ray partitioning is often quite poor because
//! the computation time for a single ray varies significantly … This
//! results in a load balancing problem which can be at least partly
//! solved by assigning discontinuous subsets of rays to the processors,
//! instead of assigning continuous subsets such as rectangular patches."
//!
//! [`StaticScheme::Contiguous`] assigns each servant a horizontal band
//! of the image (a continuous subset); [`StaticScheme::Interleaved`]
//! assigns pixel `i` to servant `i mod N` (a discontinuous subset). Both
//! send each servant its entire partition as one job up front — there is
//! no flow control and no load balancing, which is the point.

use std::sync::Arc;

use raytracer::Framebuffer;
use suprenum::{Action, Message, NodeId, ProcCtx, Process, ProcessId, Resume};

use crate::config::AppConfig;
use crate::context::{AppStats, RenderContext, Shared};
use crate::protocol::{JobMsg, ReadyMsg, ResultMsg};
use crate::servant::Servant;
use crate::tokens;

/// How pixels are statically assigned to servants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticScheme {
    /// Continuous bands (rectangular patches): poor balance, because
    /// scene content concentrates work in some bands.
    Contiguous,
    /// Discontinuous (interleaved) subsets: pixel `i` goes to servant
    /// `i mod N`, spreading expensive regions across all servants.
    Interleaved,
}

impl std::fmt::Display for StaticScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaticScheme::Contiguous => f.write_str("static contiguous"),
            StaticScheme::Interleaved => f.write_str("static interleaved"),
        }
    }
}

/// Computes the per-servant pixel lists.
pub fn partition(total: u32, servants: u32, scheme: StaticScheme) -> Vec<Vec<u32>> {
    assert!(servants > 0, "need at least one servant");
    match scheme {
        StaticScheme::Contiguous => {
            let base = total / servants;
            let extra = total % servants;
            let mut out = Vec::with_capacity(servants as usize);
            let mut next = 0u32;
            for s in 0..servants {
                let len = base + u32::from(s < extra);
                out.push((next..next + len).collect());
                next += len;
            }
            out
        }
        StaticScheme::Interleaved => {
            let mut out = vec![Vec::new(); servants as usize];
            for i in 0..total {
                out[(i % servants) as usize].push(i);
            }
            out
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmState {
    Boot,
    InitCompute,
    Spawning,
    AwaitReady,
    SendEmit,
    SendCompute,
    SendBlocked,
    SendEmitEnd,
    WaitEmit,
    WaitRecv,
    ReceiveEmit,
    ReceiveCompute,
    WriteEmit,
    WriteDisk,
    WriteEmitEnd,
}

/// The static-partitioning master: distributes the predetermined
/// partitions, waits for every servant's single result, writes the
/// image once, and exits.
pub struct StaticMaster {
    cfg: Arc<AppConfig>,
    ctx: Arc<RenderContext>,
    stats: Shared<AppStats>,
    fb: Shared<Framebuffer>,
    scheme: StaticScheme,
    state: SmState,
    servants: Vec<ProcessId>,
    ready: u32,
    partitions: Vec<Vec<u32>>,
    next_to_send: usize,
    results_pending: u32,
    collected: Vec<(u32, raytracer::Color)>,
    current_result_len: usize,
}

impl StaticMaster {
    /// Creates the static master for `scheme`.
    pub fn new(
        cfg: Arc<AppConfig>,
        ctx: Arc<RenderContext>,
        stats: Shared<AppStats>,
        fb: Shared<Framebuffer>,
        scheme: StaticScheme,
    ) -> Box<StaticMaster> {
        let partitions = partition(cfg.total_pixels(), cfg.servants as u32, scheme);
        Box::new(StaticMaster {
            cfg,
            ctx,
            stats,
            fb,
            scheme,
            state: SmState::Boot,
            servants: Vec::new(),
            ready: 0,
            partitions,
            next_to_send: 0,
            results_pending: 0,
            collected: Vec::new(),
            current_result_len: 0,
        })
    }

    /// The scheme in use.
    pub fn scheme(&self) -> StaticScheme {
        self.scheme
    }

    fn emit(&self, token: u16, param: u32) -> Action {
        Action::Emit { token, param }
    }

    fn next_send_or_wait(&mut self) -> Action {
        if self.next_to_send < self.partitions.len() {
            self.state = SmState::SendEmit;
            self.emit(tokens::SEND_JOBS_BEGIN, self.next_to_send as u32)
        } else {
            self.state = SmState::WaitEmit;
            self.emit(tokens::WAIT_RESULTS_BEGIN, 0)
        }
    }
}

impl Process for StaticMaster {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (SmState::Boot, Resume::Start) => {
                self.state = SmState::InitCompute;
                Action::Compute(self.cfg.master_init)
            }
            (SmState::InitCompute, Resume::ComputeDone) => {
                self.state = SmState::Spawning;
                let body = Servant::new(
                    1,
                    self.cfg.clone(),
                    self.ctx.clone(),
                    self.stats.clone(),
                    ctx.pid,
                );
                Action::Spawn {
                    node: NodeId::new(1),
                    body,
                }
            }
            (SmState::Spawning, Resume::Spawned(pid)) => {
                self.servants.push(pid);
                let next = self.servants.len() as u32 + 1;
                if next <= self.cfg.servants as u32 {
                    let body = Servant::new(
                        next,
                        self.cfg.clone(),
                        self.ctx.clone(),
                        self.stats.clone(),
                        ctx.pid,
                    );
                    Action::Spawn {
                        node: NodeId::new(next as u16),
                        body,
                    }
                } else {
                    self.state = SmState::AwaitReady;
                    Action::MailboxRecv
                }
            }
            (SmState::AwaitReady, Resume::MailboxMsg(msg)) => {
                assert!(
                    msg.payload::<ReadyMsg>().is_some(),
                    "expected ready notification"
                );
                self.ready += 1;
                if self.ready < self.cfg.servants as u32 {
                    self.state = SmState::AwaitReady;
                    Action::MailboxRecv
                } else {
                    self.next_send_or_wait()
                }
            }
            (SmState::SendEmit, Resume::EmitDone) => {
                let pixels = self.partitions[self.next_to_send].len();
                self.state = SmState::SendCompute;
                Action::Compute(self.cfg.send_base + self.cfg.send_per_pixel * pixels as u64)
            }
            (SmState::SendCompute, Resume::ComputeDone) => {
                let idx = self.next_to_send;
                self.next_to_send += 1;
                let job = JobMsg {
                    job_id: idx as u32,
                    pixels: self.partitions[idx].clone(),
                };
                let bytes = job.wire_bytes();
                self.stats.borrow_mut().jobs_sent += 1;
                self.results_pending += 1;
                self.state = SmState::SendBlocked;
                Action::MailboxSend {
                    to: self.servants[idx],
                    msg: Message::new(ctx.pid, bytes, job),
                }
            }
            (SmState::SendBlocked, Resume::Sent) => {
                self.state = SmState::SendEmitEnd;
                self.emit(tokens::SEND_JOBS_END, (self.next_to_send - 1) as u32)
            }
            (SmState::SendEmitEnd, Resume::EmitDone) => self.next_send_or_wait(),
            (SmState::WaitEmit, Resume::EmitDone) => {
                self.state = SmState::WaitRecv;
                Action::MailboxRecv
            }
            (SmState::WaitRecv, Resume::MailboxMsg(msg)) => {
                let result = msg
                    .payload::<ResultMsg>()
                    .expect("static master expects results")
                    .clone();
                self.state = SmState::ReceiveEmit;
                let job_id = result.job_id;
                self.current_result_len = result.pixels.len();
                self.collected.extend(result.pixels.iter().copied());
                self.stats.borrow_mut().results_received += 1;
                self.results_pending -= 1;
                self.emit(tokens::RECEIVE_RESULTS_BEGIN, job_id)
            }
            (SmState::ReceiveEmit, Resume::EmitDone) => {
                self.state = SmState::ReceiveCompute;
                Action::Compute(
                    self.cfg.receive_base
                        + self.cfg.receive_per_pixel * self.current_result_len as u64,
                )
            }
            (SmState::ReceiveCompute, Resume::ComputeDone) => {
                if self.results_pending > 0 {
                    self.state = SmState::WaitEmit;
                    self.emit(tokens::WAIT_RESULTS_BEGIN, 0)
                } else {
                    self.state = SmState::WriteEmit;
                    self.emit(tokens::WRITE_PIXELS_BEGIN, self.collected.len() as u32)
                }
            }
            (SmState::WriteEmit, Resume::EmitDone) => {
                let mut fb = self.fb.borrow_mut();
                for &(idx, color) in &self.collected {
                    fb.set_linear(idx, color);
                }
                let bytes = self.collected.len() as u32 * self.cfg.write_bytes_per_pixel;
                self.stats.borrow_mut().disk_writes += 1;
                self.state = SmState::WriteDisk;
                Action::DiskWrite { bytes }
            }
            (SmState::WriteDisk, Resume::DiskDone) => {
                self.state = SmState::WriteEmitEnd;
                self.emit(tokens::WRITE_PIXELS_END, 0)
            }
            (SmState::WriteEmitEnd, Resume::EmitDone) => Action::Exit,
            (state, why) => panic!("static master in state {state:?} cannot handle {why:?}"),
        }
    }

    fn label(&self) -> String {
        "static-master".to_owned()
    }
}

/// Runs the static-partitioning baseline with the given scheme. The
/// `app` configuration supplies the scene, image and cost constants;
/// its version/bundle/window fields are ignored (static partitioning
/// has none). Servants deliver results directly (version-1 mechanics).
pub fn run_static(
    mut app: AppConfig,
    scheme: StaticScheme,
    seed: u64,
    horizon: des::time::SimTime,
) -> crate::run::RunResult {
    app.version = crate::config::Version::V1;
    app.validate().expect("invalid application configuration");
    let machine_cfg = suprenum::MachineConfig::single_cluster((app.servants + 1) as u8);
    let mut machine = suprenum::Machine::new(machine_cfg, seed).expect("valid machine");

    let app = Arc::new(app);
    let ctx = RenderContext::new(&app);
    let stats = Shared::new(AppStats::default());
    let fb = Shared::new(Framebuffer::new(app.width, app.height));
    let master = StaticMaster::new(app.clone(), ctx, stats.clone(), fb.clone(), scheme);
    machine.add_process(NodeId::new(0), master);
    let outcome = machine.run(horizon);

    let samples = crate::run::probe_samples(&machine);
    let channels = machine.topology().total_nodes() as usize;
    let measurement = zm4::Zm4::new(zm4::Zm4Config::default(), channels, seed).observe(&samples);
    let trace = crate::run::to_simple_trace(&measurement);

    let image = fb.unwrap_or_clone();
    let app_stats = *stats.borrow();
    let intrusion = *machine.intrusion();
    crate::run::RunResult {
        outcome,
        measurement,
        trace,
        image,
        app_stats,
        machine,
        intrusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition_covers_image_in_bands() {
        let parts = partition(10, 3, StaticScheme::Contiguous);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
    }

    #[test]
    fn interleaved_partition_is_discontinuous() {
        let parts = partition(10, 3, StaticScheme::Interleaved);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn partitions_are_exact_covers() {
        for scheme in [StaticScheme::Contiguous, StaticScheme::Interleaved] {
            let parts = partition(97, 5, scheme);
            let mut all: Vec<u32> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..97).collect::<Vec<_>>(), "{scheme} does not cover");
        }
    }

    #[test]
    #[should_panic(expected = "at least one servant")]
    fn zero_servants_panics() {
        partition(10, 0, StaticScheme::Contiguous);
    }
}
