//! Application configuration: the four program versions of §4.3.
//!
//! The versions differ **structurally**, exactly as in the paper — the
//! administrative cost constants are shared:
//!
//! | | communication master→servant | servant→master | bundle | pixel queue |
//! |---|---|---|---|---|
//! | V1 | mailbox (blocking in effect) | mailbox | 1 ray | adequate for 1-ray jobs |
//! | V2 | communication agents | mailbox | 1 ray | adequate |
//! | V3 | agents | agents | 50 rays | **inadequate constant** (the bug) |
//! | V4 | agents | agents | 100 rays | fixed (large) |

use des::time::SimDuration;
use raytracer::{CostModel, TraceConfig};

/// The program version under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Version {
    /// SUPRENUM's mailbox mechanism (≈15 % servant utilization).
    V1,
    /// Communication agents master→servant (≈29 %).
    V2,
    /// Agents in both directions, 50-ray bundles (≈46 %).
    V3,
    /// 100-ray bundles and the pixel-queue fix (≈60 %).
    V4,
}

impl Version {
    /// All versions in evolution order.
    pub const ALL: [Version; 4] = [Version::V1, Version::V2, Version::V3, Version::V4];

    /// Whether the master hands outgoing jobs to communication agents.
    pub fn master_agents(self) -> bool {
        !matches!(self, Version::V1)
    }

    /// Whether servants hand results to communication agents.
    pub fn servant_agents(self) -> bool {
        matches!(self, Version::V3 | Version::V4)
    }

    /// The paper's servant-utilization result for the moderate scene.
    pub fn paper_utilization_percent(self) -> f64 {
        match self {
            Version::V1 => 15.0,
            Version::V2 => 29.0,
            Version::V3 => 46.0,
            Version::V4 => 60.0,
        }
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Version::V1 => f.write_str("Version 1 (mailbox)"),
            Version::V2 => f.write_str("Version 2 (agents one direction)"),
            Version::V3 => f.write_str("Version 3 (agents both, bundle 50)"),
            Version::V4 => f.write_str("Version 4 (bundle 100, queue fix)"),
        }
    }
}

/// Which scene the application renders.
#[derive(Debug, Clone, PartialEq)]
pub enum SceneKind {
    /// A 4-primitive scene for fast tests.
    Quickstart,
    /// The paper's 25-primitive moderate scene.
    Moderate,
    /// The fractal pyramid at the given depth (>250 primitives at 3).
    FractalPyramid(u32),
    /// A scene description file (see [`raytracer::sdl`]) — what the
    /// paper's servants actually read during initialization.
    ///
    /// `Arc` rather than `Rc`: run configurations are shipped across
    /// worker threads by the sweep harness, so they must be `Send`.
    Described(std::sync::Arc<String>),
}

impl SceneKind {
    /// Wraps a scene-description text.
    pub fn from_description(text: impl Into<String>) -> SceneKind {
        SceneKind::Described(std::sync::Arc::new(text.into()))
    }
}

/// The parallel ray tracer's configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppConfig {
    /// Program version.
    pub version: Version,
    /// Number of servant processes (nodes `1..=servants`).
    pub servants: u16,
    /// Window-flow-control credits per servant (paper: 3).
    pub window: u32,
    /// Rays per job.
    pub bundle_size: u32,
    /// The pixel-queue length constant: bounds pixels in flight
    /// (assigned or completed-but-unwritten).
    pub pixel_queue_capacity: u32,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Oversampling factor (n×n rays per pixel).
    pub oversample: u32,
    /// Contiguous completed pixels required before the master writes a
    /// stretch to disk.
    pub write_chunk: u32,
    /// The scene to render.
    pub scene: SceneKind,
    /// Sequential-tracer configuration used inside servants.
    pub trace: TraceConfig,
    /// Work → simulated-time pricing.
    pub cost: CostModel,
    /// Whether the servants' "Send Results Begin" point is instrumented
    /// (the paper added it only for the Figure 9 measurements).
    pub instrument_send_results: bool,
    /// Eager write-back: when the master can neither send nor expect
    /// results, it flushes a partial contiguous stretch instead of
    /// waiting for a full `write_chunk`. `true` is the implemented
    /// master's behavior (and keeps the protocol deadlock-free);
    /// `false` models a strict chunked write-back, whose tail deadlock
    /// the model checker predicts and the simulator then reproduces.
    pub eager_writeback: bool,

    /// Master initialization time.
    pub master_init: SimDuration,
    /// Servant initialization time (reading the replicated scene
    /// description).
    pub servant_init: SimDuration,
    /// "Distribute Jobs" fixed cost per cycle.
    pub distribute_base: SimDuration,
    /// "Distribute Jobs" cost per pixel (re)inserted into the queue.
    pub distribute_per_pixel: SimDuration,
    /// "Send Jobs" fixed cost per job.
    pub send_base: SimDuration,
    /// "Send Jobs" cost per pixel in the job.
    pub send_per_pixel: SimDuration,
    /// "Receive Results" fixed cost per result message.
    pub receive_base: SimDuration,
    /// "Receive Results" cost per returned pixel (oversampling
    /// bookkeeping, queue update, reorder insertion).
    pub receive_per_pixel: SimDuration,
    /// Bytes written to the picture file per pixel.
    pub write_bytes_per_pixel: u32,
    /// Servant fixed overhead per job.
    pub work_base: SimDuration,
    /// Ask the pipeline to enable kernel instrumentation (dispatch,
    /// block, mailbox-service, preempt probes) alongside the
    /// application's own tokens. Requires hybrid monitoring to actually
    /// reach the trace; the analyzer's workload hook warns when the
    /// monitoring mode would silently drop them.
    pub kernel_events: bool,
}

impl AppConfig {
    /// The paper's measurement setup for `version`: 15 servants (16
    /// processors), moderate scene, window 3, and each version's bundle
    /// size and queue constant.
    pub fn version(version: Version) -> Self {
        let (bundle_size, pixel_queue_capacity, write_chunk) = match version {
            Version::V1 | Version::V2 => (1, 512, 4),
            // The version-3 bug: the constant is far below the
            // 15 servants × 3 credits × 50 rays = 2250 pixels the window
            // scheme could otherwise keep in flight.
            Version::V3 => (50, 768, 64),
            Version::V4 => (100, 16_384, 128),
        };
        AppConfig {
            version,
            servants: 15,
            window: 3,
            bundle_size,
            pixel_queue_capacity,
            width: 128,
            height: 128,
            oversample: 1,
            write_chunk,
            scene: SceneKind::Moderate,
            trace: TraceConfig::default(),
            cost: CostModel::mc68020(),
            instrument_send_results: version != Version::V1,
            eager_writeback: true,
            master_init: SimDuration::from_millis(40),
            servant_init: SimDuration::from_millis(80),
            distribute_base: SimDuration::from_micros(300),
            distribute_per_pixel: SimDuration::from_micros(200),
            send_base: SimDuration::from_micros(250),
            send_per_pixel: SimDuration::from_micros(30),
            receive_base: SimDuration::from_micros(300),
            receive_per_pixel: SimDuration::from_micros(3_000),
            write_bytes_per_pixel: 16,
            work_base: SimDuration::from_micros(500),
            kernel_events: false,
        }
    }

    /// The Figure 7 setup: version 1 on **two processors** (one master,
    /// one servant).
    pub fn two_processor() -> Self {
        AppConfig {
            servants: 1,
            ..AppConfig::version(Version::V1)
        }
    }

    /// Total pixels in the image.
    pub fn total_pixels(&self) -> u32 {
        self.width * self.height
    }

    /// Processors used (master + servants) — the paper's "ray tracer on
    /// N processors".
    pub fn processors(&self) -> u16 {
        self.servants + 1
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.servants == 0 {
            return Err("need at least one servant".into());
        }
        if self.window == 0 {
            return Err("window flow control needs at least one credit".into());
        }
        if self.bundle_size == 0 {
            return Err("jobs need at least one ray".into());
        }
        if self.width == 0 || self.height == 0 {
            return Err("image must be nonempty".into());
        }
        if self.oversample == 0 {
            return Err("oversampling factor must be at least 1".into());
        }
        if self.pixel_queue_capacity < self.bundle_size {
            return Err("pixel queue must hold at least one bundle".into());
        }
        if self.write_chunk == 0 {
            return Err("write chunk must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_table_matches_paper() {
        assert!(!Version::V1.master_agents());
        assert!(Version::V2.master_agents());
        assert!(!Version::V2.servant_agents());
        assert!(Version::V3.servant_agents());
        assert_eq!(AppConfig::version(Version::V3).bundle_size, 50);
        assert_eq!(AppConfig::version(Version::V4).bundle_size, 100);
        assert_eq!(AppConfig::version(Version::V1).bundle_size, 1);
        let ladder: Vec<f64> = Version::ALL
            .iter()
            .map(|v| v.paper_utilization_percent())
            .collect();
        assert_eq!(ladder, vec![15.0, 29.0, 46.0, 60.0]);
    }

    #[test]
    fn v3_queue_constant_is_the_bug() {
        let v3 = AppConfig::version(Version::V3);
        let demand = v3.servants as u32 * v3.window * v3.bundle_size;
        assert!(
            v3.pixel_queue_capacity < demand,
            "V3's queue constant must be inadequate ({} < {demand})",
            v3.pixel_queue_capacity
        );
        let v4 = AppConfig::version(Version::V4);
        let demand4 = v4.servants as u32 * v4.window * v4.bundle_size;
        assert!(v4.pixel_queue_capacity >= demand4, "V4 fixes the constant");
    }

    #[test]
    fn all_versions_validate() {
        for v in Version::ALL {
            AppConfig::version(v).validate().unwrap();
        }
        AppConfig::two_processor().validate().unwrap();
        assert_eq!(AppConfig::two_processor().processors(), 2);
        assert_eq!(AppConfig::version(Version::V1).processors(), 16);
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = AppConfig::version(Version::V1);
        cfg.window = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = AppConfig::version(Version::V4);
        cfg.pixel_queue_capacity = 10;
        assert!(cfg.validate().unwrap_err().contains("bundle"));
    }

    #[test]
    fn display_names() {
        assert!(Version::V1.to_string().contains("mailbox"));
        assert!(Version::V4.to_string().contains("100"));
    }
}
