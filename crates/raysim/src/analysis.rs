//! Trace analysis reproducing the paper's evaluation artifacts.
//!
//! From the merged global trace this module derives:
//!
//! * per-process activity tracks (master, servants, agents) for Gantt
//!   charts like Figures 7–9;
//! * the servant-utilization metric of Figures 8–10, measured over "the
//!   actual ray tracing phase of the program only" — initialization is
//!   excluded, exactly as the paper specifies;
//! * happens-before rules for validating timestamp quality.

use simple::{ActivityTrack, CausalityRule, Trace, UtilizationReport};

use crate::tokens;

/// The ray-tracing phase of a run: from the first job reaching a servant
/// ("Work Begin") to the last result arriving at the master. Returns
/// `None` if the trace contains no such events.
pub fn work_phase(trace: &Trace) -> Option<(u64, u64)> {
    let first_work = trace
        .events()
        .iter()
        .find(|e| e.token.value() == tokens::WORK_BEGIN)
        .map(|e| e.ts_ns)?;
    let last_receive = trace
        .events()
        .iter()
        .rev()
        .find(|e| e.token.value() == tokens::RECEIVE_RESULTS_BEGIN)
        .map(|e| e.ts_ns)?;
    (first_work < last_receive).then_some((first_work, last_receive))
}

/// Derives the master's activity track (the master runs on channel 0;
/// agent tokens on the same channel are skipped by the model).
pub fn master_track(trace: &Trace, end_ns: u64) -> ActivityTrack {
    let model = tokens::master_activity_model();
    model.derive_track("Master", trace.channel(0).events().iter(), end_ns)
}

/// Derives one servant's activity track (servant `i` runs on channel
/// `i`).
pub fn servant_track(trace: &Trace, servant: u32, end_ns: u64) -> ActivityTrack {
    let model = tokens::servant_activity_model();
    model.derive_track(
        format!("Servant {servant}"),
        trace.channel(servant as usize).events().iter(),
        end_ns,
    )
}

/// Derives all servant tracks for `servants` servants.
pub fn servant_tracks(trace: &Trace, servants: u32, end_ns: u64) -> Vec<ActivityTrack> {
    (1..=servants)
        .map(|i| servant_track(trace, i, end_ns))
        .collect()
}

/// Derives agent tracks from channel-0 events. Agents are distinguished
/// by the event parameter (the agent index).
pub fn agent_tracks(trace: &Trace, end_ns: u64) -> Vec<ActivityTrack> {
    let model = tokens::agent_activity_model();
    let agent_events = trace.filter(|e| e.channel == 0 && model.state_of(e.token).is_some());
    let max_index = agent_events.events().iter().map(|e| e.param.value()).max();
    match max_index {
        None => Vec::new(),
        Some(max) => (0..=max)
            .map(|idx| {
                let events = agent_events.filter(|e| e.param.value() == idx);
                model.derive_track(format!("Agent {idx}"), events.events().iter(), end_ns)
            })
            .collect(),
    }
}

/// The paper's servant-utilization metric: mean fraction of the
/// ray-tracing phase the servants spend in the "Work" state.
///
/// # Panics
///
/// Panics if the trace contains no work phase.
pub fn servant_utilization(trace: &Trace, servants: u32) -> UtilizationReport {
    let (from, to) = work_phase(trace).expect("trace has no ray-tracing phase");
    let tracks = servant_tracks(trace, servants, to);
    UtilizationReport::measure(&tracks, "Work", from, to)
}

/// The *steady* ray-tracing phase: from the first "Work Begin" to the
/// last "Send Jobs Begin" — the period during which the pipeline is
/// still being fed. Excludes the drain tail, whose relative weight is an
/// artifact of simulation-sized images (the paper rendered 512×512 =
/// 256 K rays, making its drain tail negligible). Returns `None` if the
/// trace has no such phase.
pub fn steady_phase(trace: &Trace) -> Option<(u64, u64)> {
    let first_work = trace
        .events()
        .iter()
        .find(|e| e.token.value() == tokens::WORK_BEGIN)
        .map(|e| e.ts_ns)?;
    let last_send = trace
        .events()
        .iter()
        .rev()
        .find(|e| e.token.value() == tokens::SEND_JOBS_BEGIN)
        .map(|e| e.ts_ns)?;
    (first_work < last_send).then_some((first_work, last_send))
}

/// Servant utilization over the steady phase (see [`steady_phase`]).
///
/// # Panics
///
/// Panics if the trace contains no steady phase.
pub fn servant_utilization_steady(trace: &Trace, servants: u32) -> UtilizationReport {
    let (from, to) = steady_phase(trace).expect("trace has no steady ray-tracing phase");
    let tracks = servant_tracks(trace, servants, to);
    UtilizationReport::measure(&tracks, "Work", from, to)
}

/// Activity model for the kernel-instrumentation events
/// ([`suprenum::os_tokens`]): derives a per-node CPU timeline.
pub fn kernel_activity_model() -> simple::ActivityModel {
    use suprenum::os_tokens as os;
    let mut m = simple::ActivityModel::new();
    m.state(os::KERNEL_DISPATCH, "Running")
        .state(os::KERNEL_BLOCK, "Idle/Scheduling")
        .state(os::KERNEL_MAILBOX_SERVICE, "Mailbox Service")
        .state(os::KERNEL_EXIT, "Idle/Scheduling")
        .state(os::KERNEL_PREEMPT, "Idle/Scheduling");
    m
}

/// Derives per-node CPU timelines from the kernel-instrumentation
/// events — the paper's future-work "node scheduling algorithm"
/// visibility. One track per channel in `0..nodes`.
pub fn kernel_tracks(trace: &Trace, nodes: u32, end_ns: u64) -> Vec<ActivityTrack> {
    let model = kernel_activity_model();
    (0..nodes)
        .map(|n| {
            model.derive_track(
                format!("Node {n} CPU"),
                trace.channel(n as usize).events().iter(),
                end_ns,
            )
        })
        .collect()
}

/// Happens-before rules for this application, matched through the job id
/// carried in the event parameter:
///
/// 1. the master sends job *n* before servant work on job *n* begins;
/// 2. servant work on job *n* begins before the master receives job
///    *n*'s results.
pub fn causality_rules() -> Vec<CausalityRule> {
    vec![
        CausalityRule::new(tokens::SEND_JOBS_BEGIN, tokens::WORK_BEGIN),
        CausalityRule::new(tokens::WORK_BEGIN, tokens::RECEIVE_RESULTS_BEGIN),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use simple::Event;

    /// A miniature synthetic trace: one master cycle, one servant job.
    fn synthetic_trace() -> Trace {
        Trace::from_unsorted(vec![
            Event::new(100, 0, tokens::DISTRIBUTE_JOBS_BEGIN, 1),
            Event::new(200, 0, tokens::SEND_JOBS_BEGIN, 0),
            Event::new(350, 0, tokens::SEND_JOBS_END, 0),
            Event::new(400, 0, tokens::WAIT_RESULTS_BEGIN, 0),
            Event::new(500, 1, tokens::WORK_BEGIN, 0),
            Event::new(2_500, 1, tokens::SEND_RESULTS_BEGIN, 0),
            Event::new(2_800, 1, tokens::WAIT_JOB_BEGIN, 0),
            Event::new(3_000, 0, tokens::RECEIVE_RESULTS_BEGIN, 0),
            // Agent 0 forwarding on the master's channel.
            Event::new(210, 0, tokens::AGENT_WAKE_UP, 0),
            Event::new(220, 0, tokens::AGENT_FORWARD, 0),
            Event::new(450, 0, tokens::AGENT_FREED, 0),
            Event::new(460, 0, tokens::AGENT_SLEEP, 0),
        ])
    }

    #[test]
    fn work_phase_spans_first_work_to_last_receive() {
        let t = synthetic_trace();
        assert_eq!(work_phase(&t), Some((500, 3_000)));
    }

    #[test]
    fn servant_utilization_counts_work_fraction() {
        let t = synthetic_trace();
        let report = servant_utilization(&t, 1);
        // Work 500..2500 of phase 500..3000 = 0.8.
        assert!((report.mean - 0.8).abs() < 1e-9, "mean {}", report.mean);
    }

    #[test]
    fn master_track_ignores_agent_tokens() {
        let t = synthetic_trace();
        let track = master_track(&t, 3_500);
        // Master states only; the agent events on channel 0 must not
        // perturb the master's state machine.
        assert_eq!(
            track.states(),
            vec![
                "Distribute Jobs",
                "Send Jobs",
                "Wait for Results",
                "Receive Results"
            ]
        );
        // "Send Jobs" runs 200..350 (ended by Send Jobs End).
        assert_eq!(track.time_in_state("Send Jobs"), 150);
    }

    #[test]
    fn agent_tracks_split_by_param() {
        let mut events: Vec<Event> = synthetic_trace().events().to_vec();
        // A second agent (param 1).
        events.push(Event::new(600, 0, tokens::AGENT_WAKE_UP, 1));
        events.push(Event::new(650, 0, tokens::AGENT_SLEEP, 1));
        let t = Trace::from_unsorted(events);
        let tracks = agent_tracks(&t, 3_500);
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].name(), "Agent 0");
        assert!(tracks[1].time_in_state("Wake Up") > 0);
        // Agent 0's Freed state is the short one.
        assert_eq!(tracks[0].time_in_state("Freed"), 10);
    }

    #[test]
    fn causality_rules_pass_on_synthetic_trace() {
        let t = synthetic_trace();
        let report = simple::check_causality(&t, &causality_rules());
        assert!(report.is_clean());
        assert_eq!(report.pairs_checked, 2);
    }

    #[test]
    fn empty_trace_has_no_phase() {
        assert_eq!(work_phase(&Trace::default()), None);
        assert!(agent_tracks(&Trace::default(), 100).is_empty());
    }
}
