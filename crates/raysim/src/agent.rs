//! Communication agents (paper §4.3, versions 2–4).
//!
//! An agent is a light-weight process running on the *sender's* node
//! whose only task is to forward a message and absorb the blocking that
//! SUPRENUM's mailbox mechanism imposes on senders. The owner indicates
//! work "by setting a shared variable" and relinquishes the processor;
//! the agent forwards the message and is freed when the receiver's
//! mailbox accepts it.
//!
//! The agent's observable states are exactly Figure 9's: *Wake Up* →
//! *Forward Message* → *Freed* → *Sleep*.

use suprenum::{Action, ProcCtx, Process, Resume};

use crate::context::{AgentPool, Shared};
use crate::tokens;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AState {
    Boot,
    Waiting,
    WokeEmit,
    ForwardEmit,
    Sending,
    FreedEmit,
    SleepEmit,
}

/// A communication agent belonging to one pool.
pub struct Agent {
    pool: Shared<AgentPool>,
    index: u32,
    state: AState,
    current: Option<(suprenum::ProcessId, suprenum::Message)>,
}

impl Agent {
    /// Creates agent number `index` of `pool`. The caller (owner
    /// process) must already have counted it in `pool.total_agents`.
    pub fn new(pool: Shared<AgentPool>, index: u32) -> Box<Agent> {
        Box::new(Agent {
            pool,
            index,
            state: AState::Boot,
            current: None,
        })
    }

    fn emit(&self, token: u16) -> Action {
        Action::Emit {
            token,
            param: self.index,
        }
    }

    /// After finishing (or skipping) work: re-check the queue before
    /// sleeping, so work enqueued while we were busy (and therefore not
    /// designatable) is not stranded.
    fn after_sleep_emit(&mut self) -> Action {
        let has_work = !self.pool.borrow().queue.is_empty();
        if has_work {
            self.state = AState::WokeEmit;
            self.emit(tokens::AGENT_WAKE_UP)
        } else {
            self.state = AState::Waiting;
            let mut pool = self.pool.borrow_mut();
            pool.free.push(self.index);
            let cond = pool.agent_cond(self.index);
            Action::WaitCond(cond)
        }
    }
}

impl Process for Agent {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (AState::Boot, Resume::Start) => {
                // Work may already be queued: the owner enqueues and
                // signals *before* a freshly spawned agent reaches its
                // condition wait, and signals have no memory. Check the
                // queue first.
                let has_work = !self.pool.borrow().queue.is_empty();
                if has_work {
                    self.state = AState::WokeEmit;
                    self.emit(tokens::AGENT_WAKE_UP)
                } else {
                    self.state = AState::Waiting;
                    let mut pool = self.pool.borrow_mut();
                    pool.free.push(self.index);
                    let cond = pool.agent_cond(self.index);
                    Action::WaitCond(cond)
                }
            }
            (AState::Waiting, Resume::Signalled) => {
                // The owner already removed us from the free list when it
                // designated us.
                self.state = AState::WokeEmit;
                self.emit(tokens::AGENT_WAKE_UP)
            }
            (AState::WokeEmit, Resume::EmitDone) => {
                let work = self.pool.borrow_mut().queue.pop_front();
                match work {
                    Some(item) => {
                        self.pool.borrow_mut().busy_agents += 1;
                        self.current = Some(item);
                        self.state = AState::ForwardEmit;
                        self.emit(tokens::AGENT_FORWARD)
                    }
                    None => {
                        // "If an agent is scheduled and finds that there
                        // is no message to be forwarded, he goes back to
                        // sleep immediately."
                        self.state = AState::SleepEmit;
                        self.emit(tokens::AGENT_SLEEP)
                    }
                }
            }
            (AState::ForwardEmit, Resume::EmitDone) => {
                let (to, msg) = self.current.take().expect("forward without message");
                self.state = AState::Sending;
                Action::MailboxSend { to, msg }
            }
            (AState::Sending, Resume::Sent) => {
                // The receiver's mailbox accepted the message: freed.
                self.pool.borrow_mut().busy_agents -= 1;
                self.state = AState::FreedEmit;
                self.emit(tokens::AGENT_FREED)
            }
            (AState::FreedEmit, Resume::EmitDone) => {
                self.state = AState::SleepEmit;
                self.emit(tokens::AGENT_SLEEP)
            }
            (AState::SleepEmit, Resume::EmitDone) => self.after_sleep_emit(),
            (state, why) => {
                crate::diag::protocol_violation(ctx, &format!("agent {}", self.index), &state, &why)
            }
        }
    }

    fn label(&self) -> String {
        format!("agent-{}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suprenum::CondId;

    #[test]
    fn boot_waits_and_registers_idle() {
        let pool = AgentPool::new(100);
        let mut agent = Agent::new(pool.clone(), 0);
        let ctx = ProcCtx {
            pid: suprenum::ProcessId::new(1),
            node: suprenum::NodeId::new(0),
            now: des::time::SimTime::ZERO,
        };
        let action = agent.resume(&ctx, Resume::Start);
        assert!(matches!(action, Action::WaitCond(c) if c == CondId::new(100)));
        assert_eq!(pool.borrow().free, vec![0]);
        assert_eq!(agent.label(), "agent-0");
    }

    #[test]
    fn spurious_wakeup_goes_back_to_sleep() {
        let pool = AgentPool::new(100);
        let mut agent = Agent::new(pool.clone(), 2);
        let ctx = ProcCtx {
            pid: suprenum::ProcessId::new(1),
            node: suprenum::NodeId::new(0),
            now: des::time::SimTime::ZERO,
        };
        agent.resume(&ctx, Resume::Start);
        // Designated (popped from the free list) with an empty queue —
        // e.g. another agent drained it first.
        pool.borrow_mut().free.clear();
        let a = agent.resume(&ctx, Resume::Signalled);
        assert!(matches!(a, Action::Emit { token, .. } if token == tokens::AGENT_WAKE_UP));
        let a = agent.resume(&ctx, Resume::EmitDone);
        assert!(matches!(a, Action::Emit { token, .. } if token == tokens::AGENT_SLEEP));
        let a = agent.resume(&ctx, Resume::EmitDone);
        assert!(matches!(a, Action::WaitCond(_)));
        assert_eq!(pool.borrow().free, vec![2]);
    }

    #[test]
    fn forwards_queued_message() {
        let pool = AgentPool::new(100);
        let dst = suprenum::ProcessId::new(9);
        pool.borrow_mut().queue.push_back((
            dst,
            suprenum::Message::new(suprenum::ProcessId::new(1), 10, ()),
        ));
        let mut agent = Agent::new(pool.clone(), 0);
        let ctx = ProcCtx {
            pid: suprenum::ProcessId::new(1),
            node: suprenum::NodeId::new(0),
            now: des::time::SimTime::ZERO,
        };
        // Work is already queued, so Boot goes straight to Wake Up
        // (the lost-signal guard).
        let a = agent.resume(&ctx, Resume::Start);
        assert!(matches!(a, Action::Emit { token, .. } if token == tokens::AGENT_WAKE_UP));
        let a = agent.resume(&ctx, Resume::EmitDone); // pops queue
        assert!(matches!(a, Action::Emit { token, .. } if token == tokens::AGENT_FORWARD));
        let a = agent.resume(&ctx, Resume::EmitDone);
        assert!(matches!(a, Action::MailboxSend { to, .. } if to == dst));
        let a = agent.resume(&ctx, Resume::Sent);
        assert!(matches!(a, Action::Emit { token, .. } if token == tokens::AGENT_FREED));
        assert!(pool.borrow().queue.is_empty());
    }
}
