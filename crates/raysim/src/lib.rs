//! The paper's case study: a parallel ray tracer on SUPRENUM, observed
//! through hybrid monitoring.
//!
//! This crate implements §4 of the paper end to end:
//!
//! * the **dynamic ray partitioning** scheme — one master administrating
//!   a pixel queue and window flow control, N servants tracing ray
//!   bundles ([`master`], [`servant`], [`pixels`], [`protocol`]);
//! * the **four program versions** whose evolution the measurements
//!   drove ([`config::Version`]): mailbox communication (V1),
//!   communication agents ([`agent`]) in one (V2) then both (V3)
//!   directions with ray bundling, and the pixel-queue fix (V4);
//! * the **instrumentation points** of Figure 6 ([`tokens`]);
//! * the **experiment runner** ([`run::run`]) wiring the application into the
//!   simulated machine and the simulated ZM4;
//! * the **evaluation** ([`analysis`]) that regenerates the paper's
//!   Gantt tracks and utilization numbers.
//!
//! # Examples
//!
//! Measure servant utilization of version 2 on a small image:
//!
//! ```
//! use raysim::analysis::servant_utilization;
//! use raysim::config::{AppConfig, SceneKind, Version};
//! use raysim::run::{run, RunConfig};
//!
//! let mut app = AppConfig::version(Version::V2);
//! app.servants = 2;
//! app.scene = SceneKind::Quickstart;
//! app.width = 8;
//! app.height = 8;
//! let result = run(RunConfig::new(app));
//! assert!(result.completed());
//! let report = servant_utilization(&result.trace, 2);
//! assert!(report.mean > 0.0 && report.mean <= 1.0);
//! ```

pub mod agent;
pub mod analysis;
pub mod config;
pub mod context;
pub mod diag;
pub mod master;
pub mod objpart;
pub mod pixels;
pub mod protocol;
pub mod run;
pub mod servant;
pub mod static_partition;
pub mod tokens;
pub mod workload;

pub use config::{AppConfig, SceneKind, Version};
pub use context::{AppStats, RenderContext};
pub use run::{run, RunConfig, RunResult, TruncatedRun};
pub use workload::RenderOutput;
