//! An object partition: one processor's fraction of the scene geometry.
//!
//! Object partitioning's selling point is memory: each processor stores
//! only `1/N` of the geometry (the paper: scene descriptions "are often
//! very long and need a lot of memory"). Materials and lights are small
//! and stay replicated; the *objects* are dealt round-robin.

use raytracer::geometry::Hit;
use raytracer::intersect::{Accel, SceneIndex, VectorMode};
use raytracer::math::Ray;
use raytracer::scene::Scene;
use raytracer::work::WorkCounters;

use super::wavefront::RadianceAnswer;

/// One partition's geometry plus the mapping back to global object
/// indices.
#[derive(Debug)]
pub struct PartitionIndex {
    subset: Scene,
    global: Vec<u32>,
}

impl PartitionIndex {
    /// Builds partition `k` of `n`: objects `i` with `i % n == k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n` or `n` is zero.
    pub fn build(scene: &Scene, k: u32, n: u32) -> PartitionIndex {
        assert!(n > 0, "need at least one partition");
        assert!(k < n, "partition index {k} out of {n}");
        let mut subset = Scene::new(scene.background());
        subset.set_ambient(scene.ambient());
        let mut global = Vec::new();
        for (i, obj) in scene.objects().iter().enumerate() {
            if i as u32 % n == k {
                subset.add(obj.primitive, obj.material);
                global.push(i as u32);
            }
        }
        PartitionIndex { subset, global }
    }

    /// Number of objects stored here — the memory footprint argument.
    pub fn object_count(&self) -> usize {
        self.global.len()
    }

    /// This partition's nearest hit for `ray`, as a global-index answer.
    pub fn nearest(&self, ray: &Ray, work: &mut WorkCounters) -> Option<RadianceAnswer> {
        let index = SceneIndex::build(&self.subset, Accel::BruteForce, VectorMode::Scalar);
        index
            .closest_hit(ray, work)
            .map(|(local, hit)| RadianceAnswer {
                object: self.global[local],
                hit,
            })
    }

    /// Whether anything in this partition blocks `ray` before `t_max`.
    pub fn occluded(&self, ray: &Ray, t_max: f64, work: &mut WorkCounters) -> bool {
        let index = SceneIndex::build(&self.subset, Accel::BruteForce, VectorMode::Scalar);
        index.occluded(ray, t_max, work)
    }

    /// Answers a whole round of tasks, accumulating work counters.
    pub fn answer_round(
        &self,
        tasks: &[super::wavefront::RayTask],
        work: &mut WorkCounters,
    ) -> Vec<PartitionAnswer> {
        use super::wavefront::TaskKind;
        tasks
            .iter()
            .map(|t| match t.kind {
                TaskKind::Radiance { .. } => PartitionAnswer {
                    id: t.id,
                    radiance: self.nearest(&t.ray, work),
                    blocked: false,
                },
                TaskKind::Shadow { t_max, .. } => PartitionAnswer {
                    id: t.id,
                    radiance: None,
                    blocked: self.occluded(&t.ray, t_max, work),
                },
            })
            .collect()
    }
}

/// One partition's answer to one task (the wire format of the
/// distributed version).
#[derive(Debug, Clone, Copy)]
pub struct PartitionAnswer {
    /// The task answered.
    pub id: u32,
    /// Nearest-hit answer for radiance tasks.
    pub radiance: Option<RadianceAnswer>,
    /// Occlusion verdict for shadow tasks.
    pub blocked: bool,
}

/// Hit is re-exported for answer construction in tests.
pub type PartitionHit = Hit;

#[cfg(test)]
mod tests {
    use super::*;
    use raytracer::scenes;

    #[test]
    fn partitions_split_geometry_round_robin() {
        let (scene, _) = scenes::moderate_scene();
        let total = scene.primitive_count();
        let parts: Vec<PartitionIndex> = (0..4)
            .map(|k| PartitionIndex::build(&scene, k, 4))
            .collect();
        let sum: usize = parts.iter().map(PartitionIndex::object_count).sum();
        assert_eq!(sum, total);
        // Round-robin keeps sizes within one of each other.
        let max = parts
            .iter()
            .map(PartitionIndex::object_count)
            .max()
            .unwrap();
        let min = parts
            .iter()
            .map(PartitionIndex::object_count)
            .min()
            .unwrap();
        assert!(max - min <= 1);
        // Global indices are disjoint and cover 0..total.
        let mut all: Vec<u32> = parts
            .iter()
            .flat_map(|p| p.global.iter().copied())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..total as u32).collect::<Vec<_>>());
    }

    #[test]
    fn partition_nearest_maps_to_global_indices() {
        let (scene, camera) = scenes::quickstart_scene();
        let ray = camera.ray_for(6, 6, 12, 12, (0.5, 0.5));
        // Full-scene reference.
        let full = PartitionIndex::build(&scene, 0, 1);
        let mut w = WorkCounters::new();
        let reference = full.nearest(&ray, &mut w).expect("center ray hits");
        // The same winner must emerge from the partition that owns it.
        let parts: Vec<PartitionIndex> = (0..3)
            .map(|k| PartitionIndex::build(&scene, k, 3))
            .collect();
        let best = parts
            .iter()
            .filter_map(|p| p.nearest(&ray, &mut WorkCounters::new()))
            .min_by(|a, b| {
                a.hit
                    .t
                    .partial_cmp(&b.hit.t)
                    .unwrap()
                    .then(a.object.cmp(&b.object))
            })
            .expect("some partition hits");
        assert_eq!(best.object, reference.object);
        assert!((best.hit.t - reference.hit.t).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn bad_partition_index_panics() {
        let (scene, _) = scenes::quickstart_scene();
        PartitionIndex::build(&scene, 3, 3);
    }
}
