//! The object-partition master: broadcasts wavefront rounds, reduces
//! the partitions' answers, shades, and assembles the image.

use std::sync::Arc;

use raytracer::Framebuffer;
use suprenum::{Action, Message, NodeId, ProcCtx, Process, ProcessId, Resume};

use crate::context::{AppStats, RenderContext, Shared};
use crate::protocol::ReadyMsg;
use crate::tokens;

use super::servant::{ObjJob, ObjResult, ObjServant};
use super::wavefront::{RoundAnswers, WavefrontEngine};
use super::ObjPartConfig;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Boot,
    Init,
    Spawning,
    AwaitReady,
    BroadcastEmit,
    BroadcastCompute,
    BroadcastSend,
    BroadcastEnd,
    WaitEmit,
    WaitRecv,
    ReduceEmit,
    ReduceCompute,
    ShadeCompute,
    WriteEmit,
    WriteDisk,
    WriteEnd,
}

/// The object-partitioning master process.
pub struct ObjMaster {
    cfg: Arc<ObjPartConfig>,
    ctx: Arc<RenderContext>,
    stats: Shared<AppStats>,
    fb: Shared<Framebuffer>,
    rounds_out: Shared<u32>,
    state: State,
    servants: Vec<ProcessId>,
    ready: u32,
    engine: Option<WavefrontEngine>,
    tasks: Arc<Vec<super::wavefront::RayTask>>,
    answers: RoundAnswers,
    round: u32,
    results_pending: u32,
    next_broadcast: usize,
    last_result_len: usize,
}

impl ObjMaster {
    /// Creates the master. `rounds_out` receives the executed round
    /// count.
    pub fn new(
        cfg: Arc<ObjPartConfig>,
        ctx: Arc<RenderContext>,
        stats: Shared<AppStats>,
        fb: Shared<Framebuffer>,
        rounds_out: Shared<u32>,
    ) -> Box<ObjMaster> {
        Box::new(ObjMaster {
            cfg,
            ctx,
            stats,
            fb,
            rounds_out,
            state: State::Boot,
            servants: Vec::new(),
            ready: 0,
            engine: None,
            tasks: Arc::new(Vec::new()),
            answers: RoundAnswers::default(),
            round: 0,
            results_pending: 0,
            next_broadcast: 0,
            last_result_len: 0,
        })
    }

    /// Seeds the primary wavefront.
    fn seed(&mut self) {
        let (w, h) = self.ctx.dimensions();
        let camera = *self.ctx.camera();
        let mut engine =
            WavefrontEngine::new(self.ctx.scene(), w * h, self.cfg.app.trace.max_depth);
        let primaries = (0..w * h).map(|idx| {
            let (px, py) = (idx % w, idx / w);
            (idx, camera.ray_for(px, py, w, h, (0.5, 0.5)))
        });
        self.tasks = Arc::new(engine.primary_tasks(primaries));
        self.engine = Some(engine);
    }

    /// Starts broadcasting the current wavefront.
    fn begin_round(&mut self) -> Action {
        self.round += 1;
        *self.rounds_out.borrow_mut() += 1;
        self.answers = RoundAnswers::sized_for(&self.tasks);
        self.next_broadcast = 0;
        self.results_pending = self.servants.len() as u32;
        self.state = State::BroadcastEmit;
        Action::Emit {
            token: tokens::SEND_JOBS_BEGIN,
            param: self.round,
        }
    }

    fn broadcast_next(&mut self, own_pid: ProcessId) -> Action {
        let idx = self.next_broadcast;
        self.next_broadcast += 1;
        let job = ObjJob {
            round: self.round,
            tasks: self.tasks.clone(),
        };
        let bytes = 24 + self.cfg.bytes_per_task * self.tasks.len() as u32;
        self.stats.borrow_mut().jobs_sent += 1;
        self.state = State::BroadcastSend;
        Action::MailboxSend {
            to: self.servants[idx],
            msg: Message::new(own_pid, bytes, job),
        }
    }

    /// All answers in: shade and either start the next round or finish.
    fn after_shade(&mut self) -> Action {
        let engine = self.engine.as_mut().expect("engine");
        let next = engine.shade_round(&self.tasks, &self.answers);
        self.tasks = Arc::new(next);
        if self.tasks.is_empty() {
            // Assemble the picture and write it once.
            let (w, _) = self.ctx.dimensions();
            let _ = w;
            let pixels = engine.pixels().to_vec();
            {
                let mut fb = self.fb.borrow_mut();
                for (idx, color) in pixels.iter().enumerate() {
                    fb.set_linear(idx as u32, *color);
                }
            }
            self.stats.borrow_mut().disk_writes += 1;
            self.state = State::WriteEmit;
            return Action::Emit {
                token: tokens::WRITE_PIXELS_BEGIN,
                param: pixels.len() as u32,
            };
        }
        self.begin_round()
    }
}

impl Process for ObjMaster {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (State::Boot, Resume::Start) => {
                self.state = State::Init;
                Action::Compute(self.cfg.app.master_init)
            }
            (State::Init, Resume::ComputeDone) => {
                self.state = State::Spawning;
                let body = ObjServant::new(1, self.cfg.clone(), self.ctx.clone(), ctx.pid);
                Action::Spawn {
                    node: NodeId::new(1),
                    body,
                }
            }
            (State::Spawning, Resume::Spawned(pid)) => {
                self.servants.push(pid);
                let next = self.servants.len() as u32 + 1;
                if next <= self.cfg.app.servants as u32 {
                    let body = ObjServant::new(next, self.cfg.clone(), self.ctx.clone(), ctx.pid);
                    Action::Spawn {
                        node: NodeId::new(next as u16),
                        body,
                    }
                } else {
                    self.state = State::AwaitReady;
                    Action::MailboxRecv
                }
            }
            (State::AwaitReady, Resume::MailboxMsg(msg)) => {
                assert!(
                    msg.payload::<ReadyMsg>().is_some(),
                    "expected ready notification"
                );
                self.ready += 1;
                if self.ready < self.cfg.app.servants as u32 {
                    self.state = State::AwaitReady;
                    Action::MailboxRecv
                } else {
                    self.seed();
                    self.begin_round()
                }
            }
            (State::BroadcastEmit, Resume::EmitDone) => {
                self.state = State::BroadcastCompute;
                Action::Compute(
                    self.cfg.app.send_base + self.cfg.app.send_per_pixel * self.tasks.len() as u64,
                )
            }
            (State::BroadcastCompute, Resume::ComputeDone) => self.broadcast_next(ctx.pid),
            (State::BroadcastSend, Resume::Sent) => {
                if self.next_broadcast < self.servants.len() {
                    self.broadcast_next(ctx.pid)
                } else {
                    self.state = State::BroadcastEnd;
                    Action::Emit {
                        token: tokens::SEND_JOBS_END,
                        param: self.round,
                    }
                }
            }
            (State::BroadcastEnd, Resume::EmitDone) => {
                self.state = State::WaitEmit;
                Action::Emit {
                    token: tokens::WAIT_RESULTS_BEGIN,
                    param: self.round,
                }
            }
            (State::WaitEmit, Resume::EmitDone) => {
                self.state = State::WaitRecv;
                Action::MailboxRecv
            }
            (State::WaitRecv, Resume::MailboxMsg(msg)) => {
                let result = msg
                    .payload::<ObjResult>()
                    .expect("master expects round answers")
                    .clone();
                assert_eq!(result.round, self.round, "answer for a stale round");
                self.last_result_len = result.answers.len();
                for a in &result.answers {
                    if let Some(r) = a.radiance {
                        self.answers.merge_radiance(a.id, r);
                    }
                    if a.blocked {
                        self.answers.merge_shadow(a.id, true);
                    }
                }
                self.stats.borrow_mut().results_received += 1;
                self.results_pending -= 1;
                self.state = State::ReduceEmit;
                Action::Emit {
                    token: tokens::RECEIVE_RESULTS_BEGIN,
                    param: result.servant,
                }
            }
            (State::ReduceEmit, Resume::EmitDone) => {
                self.state = State::ReduceCompute;
                Action::Compute(
                    self.cfg.app.receive_base
                        + self.cfg.reduce_per_answer * self.last_result_len as u64,
                )
            }
            (State::ReduceCompute, Resume::ComputeDone) => {
                if self.results_pending > 0 {
                    self.state = State::WaitEmit;
                    Action::Emit {
                        token: tokens::WAIT_RESULTS_BEGIN,
                        param: self.round,
                    }
                } else {
                    // All partitions answered: pay the shading cost, then
                    // build the next wavefront.
                    let radiance_hits =
                        self.answers.radiance.iter().filter(|r| r.is_some()).count();
                    self.state = State::ShadeCompute;
                    Action::Compute(self.cfg.shade_per_hit * radiance_hits.max(1) as u64)
                }
            }
            (State::ShadeCompute, Resume::ComputeDone) => self.after_shade(),
            (State::WriteEmit, Resume::EmitDone) => {
                let (w, h) = self.ctx.dimensions();
                self.state = State::WriteDisk;
                Action::DiskWrite {
                    bytes: w * h * self.cfg.app.write_bytes_per_pixel,
                }
            }
            (State::WriteDisk, Resume::DiskDone) => {
                self.state = State::WriteEnd;
                Action::Emit {
                    token: tokens::WRITE_PIXELS_END,
                    param: 0,
                }
            }
            (State::WriteEnd, Resume::EmitDone) => Action::Exit,
            (state, why) => crate::diag::protocol_violation(ctx, "object master", &state, &why),
        }
    }

    fn label(&self) -> String {
        "obj-master".to_owned()
    }
}
