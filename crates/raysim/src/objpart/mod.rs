//! Object partitioning — the other parallelization scheme of §4.1.
//!
//! "Using object partitioning, each processor takes care of a certain
//! fraction of the objects in the scene to be rendered." The paper chose
//! ray partitioning instead, trading replicated scene storage for
//! independence; this module implements the road not taken so the
//! trade-off can actually be measured:
//!
//! * each servant stores only `1/N` of the geometry
//!   ([`partition::PartitionIndex`]) — the memory win;
//! * every ray of every generation is broadcast to all servants and
//!   their answers reduced ([`wavefront`]) — the communication and
//!   master-reduction cost.
//!
//! [`run_object_partitioned`] executes the scheme on the simulated
//! machine under the same monitoring as the ray-partitioned versions,
//! so Gantt charts and utilization numbers are directly comparable
//! (`ablation_object_partitioning`).

pub mod master;
pub mod partition;
pub mod servant;
pub mod wavefront;

use std::sync::Arc;

use des::time::{SimDuration, SimTime};
use raytracer::Framebuffer;
use suprenum::NodeId;

use crate::config::AppConfig;
use crate::context::{AppStats, RenderContext, Shared};

/// Configuration of an object-partitioned run.
#[derive(Debug, Clone)]
pub struct ObjPartConfig {
    /// Scene, image and shared cost constants. `servants` is the number
    /// of partitions; version/bundle/window fields are ignored.
    pub app: AppConfig,
    /// Master cost to reduce one partition answer.
    pub reduce_per_answer: SimDuration,
    /// Master cost to shade one hit.
    pub shade_per_hit: SimDuration,
    /// Wire bytes per broadcast task.
    pub bytes_per_task: u32,
    /// Wire bytes per partition answer.
    pub bytes_per_answer: u32,
}

impl ObjPartConfig {
    /// Defaults mirroring the ray-partitioned cost model.
    pub fn new(app: AppConfig) -> ObjPartConfig {
        ObjPartConfig {
            app,
            reduce_per_answer: SimDuration::from_micros(40),
            shade_per_hit: SimDuration::from_micros(250),
            bytes_per_task: 48,
            bytes_per_answer: 40,
        }
    }
}

/// Result of an object-partitioned run.
#[derive(Debug)]
pub struct ObjRunResult {
    /// How the run ended.
    pub outcome: suprenum::RunOutcome,
    /// The rendered image.
    pub image: Framebuffer,
    /// The merged monitoring trace.
    pub trace: simple::Trace,
    /// Broadcast rounds executed.
    pub rounds: u32,
    /// The machine (ground truth, stats, interconnect counters).
    pub machine: suprenum::Machine,
    /// Largest per-servant geometry footprint, in objects — the memory
    /// argument for this scheme.
    pub max_objects_per_servant: usize,
}

impl ObjRunResult {
    /// Returns `true` if the run completed.
    pub fn completed(&self) -> bool {
        self.outcome.reason == suprenum::RunEnd::Completed
    }

    /// Errors with a [`crate::run::TruncatedRun`] report if the run did
    /// not complete — the same loud-failure contract as
    /// [`crate::run::RunResult::ensure_completed`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::run::TruncatedRun`] when the outcome is anything
    /// but [`suprenum::RunEnd::Completed`].
    pub fn ensure_completed(&self) -> Result<(), crate::run::TruncatedRun> {
        if self.completed() {
            Ok(())
        } else {
            Err(crate::run::TruncatedRun {
                reason: self.outcome.reason,
                end: self.outcome.end,
                events: self.outcome.events,
            })
        }
    }
}

/// Runs the object-partitioned renderer on the simulated machine.
///
/// # Panics
///
/// Panics if the application configuration is invalid.
pub fn run_object_partitioned(cfg: ObjPartConfig, seed: u64, horizon: SimTime) -> ObjRunResult {
    cfg.app
        .validate()
        .expect("invalid application configuration");
    let nodes = cfg.app.servants as u32 + 1;
    let machine_cfg = if nodes <= 16 {
        suprenum::MachineConfig::single_cluster(nodes as u8)
    } else {
        let clusters = nodes.div_ceil(16) as u8;
        suprenum::MachineConfig {
            clusters,
            torus_cols: 1,
            ..suprenum::MachineConfig::single_cluster(16)
        }
    };
    let mut machine = suprenum::Machine::new(machine_cfg, seed).expect("valid machine");

    let cfg = Arc::new(cfg);
    let ctx = RenderContext::new(&cfg.app);
    let stats = Shared::new(AppStats::default());
    let fb = Shared::new(Framebuffer::new(cfg.app.width, cfg.app.height));
    let rounds = Shared::new(0u32);
    let max_objects = ctx
        .scene()
        .primitive_count()
        .div_ceil(cfg.app.servants as usize);

    let master = master::ObjMaster::new(cfg.clone(), ctx, stats, fb.clone(), rounds.clone());
    machine.add_process(NodeId::new(0), master);
    let outcome = machine.run(horizon);

    let samples = crate::run::probe_samples(&machine);
    let channels = machine.topology().total_nodes() as usize;
    let measurement = zm4::Zm4::new(zm4::Zm4Config::default(), channels, seed).observe(&samples);
    let trace = crate::run::to_simple_trace(&measurement);

    let image = fb.unwrap_or_clone();
    let rounds = *rounds.borrow();
    ObjRunResult {
        outcome,
        image,
        trace,
        rounds,
        machine,
        max_objects_per_servant: max_objects,
    }
}
