//! The object-partition servant: answers broadcast ray rounds against
//! its fraction of the scene.

use std::sync::Arc;

use raytracer::WorkCounters;
use suprenum::{Action, Message, ProcCtx, Process, ProcessId, Resume};

use crate::context::RenderContext;
use crate::protocol::ReadyMsg;
use crate::tokens;

use super::partition::{PartitionAnswer, PartitionIndex};
use super::wavefront::RayTask;
use super::ObjPartConfig;

/// A broadcast round's job message.
#[derive(Debug, Clone)]
pub struct ObjJob {
    /// Round number.
    pub round: u32,
    /// The wavefront tasks.
    pub tasks: Arc<Vec<RayTask>>,
}

/// A partition's answers for one round.
#[derive(Debug, Clone)]
pub struct ObjResult {
    /// Round number.
    pub round: u32,
    /// Answering partition (1-based).
    pub servant: u32,
    /// Per-task answers.
    pub answers: Vec<PartitionAnswer>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Boot,
    Init,
    SendReady,
    WaitEmit,
    WaitRecv,
    WorkEmit,
    WorkCompute,
    SendEmit,
    SendBlocked,
}

/// One object-partition servant.
pub struct ObjServant {
    index: u32,
    cfg: Arc<ObjPartConfig>,
    ctx: Arc<RenderContext>,
    master: ProcessId,
    partition: Option<PartitionIndex>,
    state: State,
    current: Option<ObjJob>,
    pending: Option<ObjResult>,
}

impl ObjServant {
    /// Creates partition servant `index` (1-based; owns partition
    /// `index - 1` of `servants`).
    pub fn new(
        index: u32,
        cfg: Arc<ObjPartConfig>,
        ctx: Arc<RenderContext>,
        master: ProcessId,
    ) -> Box<ObjServant> {
        Box::new(ObjServant {
            index,
            cfg,
            ctx,
            master,
            partition: None,
            state: State::Boot,
            current: None,
            pending: None,
        })
    }
}

impl Process for ObjServant {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match (self.state, why) {
            (State::Boot, Resume::Start) => {
                // Initialization: load only this partition's fraction of
                // the scene description.
                self.partition = Some(PartitionIndex::build(
                    self.ctx.scene(),
                    self.index - 1,
                    self.cfg.app.servants as u32,
                ));
                self.state = State::Init;
                // Loading 1/N of the scene costs ~1/N of the full init.
                Action::Compute(self.cfg.app.servant_init / self.cfg.app.servants as u64)
            }
            (State::Init, Resume::ComputeDone) => {
                let ready = ReadyMsg {
                    servant: self.index,
                };
                self.state = State::SendReady;
                Action::MailboxSend {
                    to: self.master,
                    msg: Message::new(ctx.pid, ready.wire_bytes(), ready),
                }
            }
            (State::SendReady, Resume::Sent) => {
                self.state = State::WaitEmit;
                Action::Emit {
                    token: tokens::WAIT_JOB_BEGIN,
                    param: 0,
                }
            }
            (State::WaitEmit, Resume::EmitDone) => {
                self.state = State::WaitRecv;
                Action::MailboxRecv
            }
            (State::WaitRecv, Resume::MailboxMsg(msg)) => {
                let job = msg
                    .payload::<ObjJob>()
                    .expect("object servant expects rounds")
                    .clone();
                self.state = State::WorkEmit;
                let round = job.round;
                self.current = Some(job);
                Action::Emit {
                    token: tokens::WORK_BEGIN,
                    param: round,
                }
            }
            (State::WorkEmit, Resume::EmitDone) => {
                let job = self.current.take().expect("round in progress");
                let partition = self.partition.as_ref().expect("partition built");
                let mut work = WorkCounters::new();
                let answers = partition.answer_round(&job.tasks, &mut work);
                self.pending = Some(ObjResult {
                    round: job.round,
                    servant: self.index,
                    answers,
                });
                self.state = State::WorkCompute;
                Action::Compute(self.cfg.app.work_base + self.cfg.app.cost.simulated_time(&work))
            }
            (State::WorkCompute, Resume::ComputeDone) => {
                let round = self.pending.as_ref().expect("answers pending").round;
                self.state = State::SendEmit;
                Action::Emit {
                    token: tokens::SEND_RESULTS_BEGIN,
                    param: round,
                }
            }
            (State::SendEmit, Resume::EmitDone) => {
                let result = self.pending.take().expect("answers pending");
                let bytes = 24 + self.cfg.bytes_per_answer * result.answers.len() as u32;
                self.state = State::SendBlocked;
                Action::MailboxSend {
                    to: self.master,
                    msg: Message::new(ctx.pid, bytes, result),
                }
            }
            (State::SendBlocked, Resume::Sent) => {
                self.state = State::WaitEmit;
                Action::Emit {
                    token: tokens::WAIT_JOB_BEGIN,
                    param: 0,
                }
            }
            (state, why) => crate::diag::protocol_violation(
                ctx,
                &format!("object servant {}", self.index),
                &state,
                &why,
            ),
        }
    }

    fn label(&self) -> String {
        format!("obj-servant-{}", self.index)
    }
}
