//! Wavefront formulation of Whitted ray tracing.
//!
//! Object partitioning (paper §4.1: "each processor takes care of a
//! certain fraction of the objects in the scene") cannot use the
//! recursive tracer: no single processor can answer a nearest-hit query
//! alone. Instead the computation proceeds in *rounds* over a wavefront
//! of ray tasks: every ray is broadcast to all partitions, each returns
//! its local nearest hit (or occlusion verdict), a reduction picks the
//! global winner, and shading spawns the next generation of rays.
//!
//! [`WavefrontEngine`] implements the round logic against abstract
//! `nearest`/`occluded` answers, so the same code drives both the
//! in-process reference (used to prove colour-exact equivalence with the
//! recursive tracer) and the distributed master in
//! [`crate::objpart::master`].

use raytracer::color::Color;
use raytracer::geometry::Hit;
use raytracer::material::Material;
use raytracer::math::Ray;
use raytracer::scene::Scene;

/// One ray task in the wavefront.
#[derive(Debug, Clone, Copy)]
pub struct RayTask {
    /// Task id, unique within its round.
    pub id: u32,
    /// The ray.
    pub ray: Ray,
    /// What kind of answer the task needs.
    pub kind: TaskKind,
}

/// The task's role.
#[derive(Debug, Clone, Copy)]
pub enum TaskKind {
    /// A radiance ray: needs the global nearest hit.
    Radiance {
        /// Destination pixel (linear index).
        pixel: u32,
        /// Accumulated throughput weight.
        weight: Color,
        /// Recursion depth.
        depth: u32,
    },
    /// A shadow ray: needs a boolean "blocked before `t_max`".
    Shadow {
        /// Distance to the light.
        t_max: f64,
        /// Destination pixel.
        pixel: u32,
        /// The lighting contribution added if unblocked.
        contribution: Color,
    },
}

/// A partition's answer to a radiance task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadianceAnswer {
    /// Global object index of the hit.
    pub object: u32,
    /// The hit.
    pub hit: Hit,
}

/// The reduced (global) answers for one round, indexed by task id.
#[derive(Debug, Clone, Default)]
pub struct RoundAnswers {
    /// `radiance[id]` = the winning hit, if any.
    pub radiance: Vec<Option<RadianceAnswer>>,
    /// `shadow[id]` = blocked?
    pub shadow: Vec<bool>,
}

impl RoundAnswers {
    /// Creates an answer table sized for `tasks`.
    pub fn sized_for(tasks: &[RayTask]) -> RoundAnswers {
        RoundAnswers {
            radiance: vec![None; tasks.len()],
            shadow: vec![false; tasks.len()],
        }
    }

    /// Merges a partition's radiance answer: keep the closer hit, with
    /// ties broken by the lower global object index (matching the
    /// sequential tracer's first-wins iteration order).
    pub fn merge_radiance(&mut self, id: u32, answer: RadianceAnswer) {
        let slot = &mut self.radiance[id as usize];
        let better = match slot {
            None => true,
            Some(cur) => {
                answer.hit.t < cur.hit.t
                    || (answer.hit.t == cur.hit.t && answer.object < cur.object)
            }
        };
        if better {
            *slot = Some(answer);
        }
    }

    /// Merges a partition's occlusion verdict.
    pub fn merge_shadow(&mut self, id: u32, blocked: bool) {
        if blocked {
            self.shadow[id as usize] = true;
        }
    }
}

/// The master-side engine: pixel accumulation plus round shading.
#[derive(Debug)]
pub struct WavefrontEngine {
    materials: Vec<Material>,
    lights: Vec<raytracer::material::Light>,
    ambient: Color,
    background: Color,
    max_depth: u32,
    pixels: Vec<Color>,
    /// Shading operations performed (for cost accounting).
    pub shadings: u64,
    /// Rays generated across all rounds.
    pub rays_generated: u64,
}

impl WavefrontEngine {
    /// Creates an engine for an image of `pixel_count` pixels. Only the
    /// scene's *small* replicated parts are taken: materials, lights,
    /// ambient and background — the geometry stays distributed.
    pub fn new(scene: &Scene, pixel_count: u32, max_depth: u32) -> WavefrontEngine {
        WavefrontEngine {
            materials: scene.objects().iter().map(|o| o.material).collect(),
            lights: scene.lights().to_vec(),
            ambient: scene.ambient(),
            background: scene.background(),
            max_depth,
            pixels: vec![Color::BLACK; pixel_count as usize],
            shadings: 0,
            rays_generated: 0,
        }
    }

    /// Seeds the first wavefront with primary rays.
    pub fn primary_tasks<I>(&mut self, rays: I) -> Vec<RayTask>
    where
        I: IntoIterator<Item = (u32, Ray)>,
    {
        let tasks: Vec<RayTask> = rays
            .into_iter()
            .enumerate()
            .map(|(i, (pixel, ray))| RayTask {
                id: i as u32,
                ray,
                kind: TaskKind::Radiance {
                    pixel,
                    weight: Color::WHITE,
                    depth: 0,
                },
            })
            .collect();
        self.rays_generated += tasks.len() as u64;
        tasks
    }

    /// Applies one round's reduced answers; returns the next wavefront.
    /// The computation is finished when the returned wavefront is empty.
    pub fn shade_round(&mut self, tasks: &[RayTask], answers: &RoundAnswers) -> Vec<RayTask> {
        let mut next = Vec::new();
        for task in tasks {
            match task.kind {
                TaskKind::Shadow {
                    pixel,
                    contribution,
                    ..
                } => {
                    if !answers.shadow[task.id as usize] {
                        self.pixels[pixel as usize] += contribution;
                    }
                }
                TaskKind::Radiance {
                    pixel,
                    weight,
                    depth,
                } => match answers.radiance[task.id as usize] {
                    None => {
                        self.pixels[pixel as usize] += self.background.modulate(weight);
                    }
                    Some(ra) => self.shade_hit(&task.ray, &ra, pixel, weight, depth, &mut next),
                },
            }
        }
        for (i, t) in next.iter_mut().enumerate() {
            t.id = i as u32;
        }
        self.rays_generated += next.len() as u64;
        next
    }

    /// Whitted shading of one hit: ambient now, per-light contributions
    /// deferred behind shadow tasks, reflection/refraction spawned as
    /// next-generation radiance tasks. Mirrors
    /// `raytracer::Tracer::trace_depth` exactly, so colours match the
    /// recursive tracer bit for bit.
    fn shade_hit(
        &mut self,
        ray: &Ray,
        ra: &RadianceAnswer,
        pixel: u32,
        weight: Color,
        depth: u32,
        next: &mut Vec<RayTask>,
    ) {
        self.shadings += 1;
        let material = self.materials[ra.object as usize];
        let hit = ra.hit;
        let surface = material.color_at(hit.point);
        self.pixels[pixel as usize] +=
            (self.ambient.modulate(surface) * material.ambient).modulate(weight);

        for light in &self.lights {
            let to_light = light.position - hit.point;
            let distance = to_light.length();
            let l_dir = to_light / distance;
            let n_dot_l = hit.normal.dot(l_dir).max(0.0);
            let mut contribution = Color::BLACK;
            if n_dot_l > 0.0 {
                contribution += light.color.modulate(surface) * (material.diffuse * n_dot_l);
                if material.specular > 0.0 {
                    let h = (l_dir - ray.dir).normalized();
                    let spec = hit.normal.dot(h).max(0.0).powf(material.shininess);
                    contribution += light.color * (material.specular * spec);
                }
            }
            if contribution != Color::BLACK {
                next.push(RayTask {
                    id: 0,
                    ray: Ray {
                        origin: hit.point,
                        dir: l_dir,
                    },
                    kind: TaskKind::Shadow {
                        t_max: distance,
                        pixel,
                        contribution: contribution.modulate(weight),
                    },
                });
            }
        }

        if depth < self.max_depth {
            if material.reflectivity > 0.0 {
                next.push(RayTask {
                    id: 0,
                    ray: Ray::new(hit.point, ray.dir.reflect(hit.normal)),
                    kind: TaskKind::Radiance {
                        pixel,
                        weight: weight * material.reflectivity,
                        depth: depth + 1,
                    },
                });
            }
            if material.transparency > 0.0 {
                let eta = 1.0 / material.ior;
                let (dir, _tir) = match ray.dir.refract(hit.normal, eta) {
                    Some(t) => (t, false),
                    None => (ray.dir.reflect(hit.normal), true),
                };
                next.push(RayTask {
                    id: 0,
                    ray: Ray::new(hit.point, dir),
                    kind: TaskKind::Radiance {
                        pixel,
                        weight: weight * material.transparency,
                        depth: depth + 1,
                    },
                });
            }
        }
    }

    /// The accumulated image.
    pub fn pixels(&self) -> &[Color] {
        &self.pixels
    }

    /// Consumes the engine, returning the pixel colours.
    pub fn into_pixels(self) -> Vec<Color> {
        self.pixels
    }
}

/// The small shading detail that makes colour equivalence exact: the
/// recursive tracer casts a shadow ray before evaluating `n·l`, but the
/// colour is identical when zero-contribution shadow rays are skipped —
/// verified by the equivalence test below.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::objpart::partition::PartitionIndex;
    use raytracer::intersect::VectorMode;
    use raytracer::math::Vec3;
    use raytracer::tracer::{TraceConfig, Tracer};
    use raytracer::{scenes, Accel};

    /// Render via wavefront rounds over `parts` partitions and compare
    /// with the recursive tracer, pixel for pixel.
    fn assert_equivalent(scene_and_cam: (raytracer::Scene, raytracer::Camera), parts: u32) {
        let (scene, camera) = scene_and_cam;
        let n = 12u32;
        let max_depth = 4;

        // Reference: the recursive tracer (no shadows disabled, scalar).
        let cfg = TraceConfig {
            max_depth,
            accel: Accel::BruteForce,
            vector_mode: VectorMode::Scalar,
            shadows: true,
        };
        let tracer = Tracer::new(&scene, cfg);

        // Wavefront over object partitions.
        let partitions: Vec<PartitionIndex> = (0..parts)
            .map(|k| PartitionIndex::build(&scene, k, parts))
            .collect();
        let mut engine = WavefrontEngine::new(&scene, n * n, max_depth);
        let primaries = (0..n * n).map(|idx| {
            let (px, py) = (idx % n, idx / n);
            (idx, camera.ray_for(px, py, n, n, (0.5, 0.5)))
        });
        let mut tasks = engine.primary_tasks(primaries);
        let mut rounds = 0;
        while !tasks.is_empty() {
            rounds += 1;
            assert!(rounds < 64, "wavefront did not converge");
            let mut answers = RoundAnswers::sized_for(&tasks);
            for p in &partitions {
                let mut work = raytracer::WorkCounters::new();
                for t in &tasks {
                    match t.kind {
                        TaskKind::Radiance { .. } => {
                            if let Some(a) = p.nearest(&t.ray, &mut work) {
                                answers.merge_radiance(t.id, a);
                            }
                        }
                        TaskKind::Shadow { t_max, .. } => {
                            answers.merge_shadow(t.id, p.occluded(&t.ray, t_max, &mut work));
                        }
                    }
                }
            }
            tasks = engine.shade_round(&tasks, &answers);
        }

        for idx in 0..n * n {
            let (px, py) = (idx % n, idx / n);
            let (expected, _) = tracer.render_pixel(&camera, px, py, n, n, 1);
            let got = engine.pixels()[idx as usize];
            assert_eq!(
                got.to_rgb8(),
                expected.to_rgb8(),
                "pixel ({px},{py}) differs (wavefront {got:?} vs recursive {expected:?})"
            );
        }
    }

    #[test]
    fn single_partition_matches_recursive_tracer() {
        assert_equivalent(scenes::quickstart_scene(), 1);
    }

    #[test]
    fn three_partitions_match_recursive_tracer() {
        assert_equivalent(scenes::quickstart_scene(), 3);
    }

    #[test]
    fn moderate_scene_five_partitions_match() {
        assert_equivalent(scenes::moderate_scene(), 5);
    }

    #[test]
    fn textured_whitted_scene_matches_across_partitions() {
        // The checkerboard texture must evaluate identically in the
        // wavefront shader and the recursive tracer.
        assert_equivalent(scenes::whitted_scene(), 3);
    }

    #[test]
    fn reduction_prefers_closer_hit_and_lower_index() {
        let hit = |t: f64| Hit {
            t,
            point: Vec3::ZERO,
            normal: Vec3::new(0.0, 1.0, 0.0),
        };
        let task = RayTask {
            id: 0,
            ray: Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0)),
            kind: TaskKind::Radiance {
                pixel: 0,
                weight: Color::WHITE,
                depth: 0,
            },
        };
        let mut answers = RoundAnswers::sized_for(&[task]);
        answers.merge_radiance(
            0,
            RadianceAnswer {
                object: 5,
                hit: hit(2.0),
            },
        );
        answers.merge_radiance(
            0,
            RadianceAnswer {
                object: 9,
                hit: hit(1.0),
            },
        );
        assert_eq!(answers.radiance[0].unwrap().object, 9);
        // Tie on t: lower object index wins.
        answers.merge_radiance(
            0,
            RadianceAnswer {
                object: 3,
                hit: hit(1.0),
            },
        );
        assert_eq!(answers.radiance[0].unwrap().object, 3);
        answers.merge_radiance(
            0,
            RadianceAnswer {
                object: 7,
                hit: hit(1.0),
            },
        );
        assert_eq!(answers.radiance[0].unwrap().object, 3);
    }
}
