//! The master's pixel bookkeeping: the pixel queue and the in-order
//! write-back buffer.
//!
//! The master "always keeps a certain number of unfinished pixels in a
//! queue" and "pixels have to be written in correct ordering. So,
//! whenever a continuous stretch of pixels has been processed, the
//! results are written onto disk"; after writing, "new pixels must be
//! inserted into the pixel-queue" (paper §4.3).
//!
//! [`PixelLedger`] models the consequence that bit the paper's authors:
//! the queue constant bounds the number of pixels that are *anywhere* in
//! flight — assigned, computed-but-unwritten, or waiting for an earlier
//! pixel so the stretch becomes contiguous. Version 3's "inadequate
//! constant" starves the servants exactly through this mechanism; the
//! version-4 fix is a larger capacity.

use raytracer::color::Color;

/// Tracks assignment, completion and in-order write-back of an image's
/// pixels.
///
/// # Examples
///
/// ```
/// use raysim::pixels::PixelLedger;
/// use raytracer::color::Color;
///
/// let mut ledger = PixelLedger::new(4, 2); // 4 pixels, capacity 2
/// assert_eq!(ledger.assign(8), vec![0, 1]); // capacity caps the grab
/// ledger.complete(1, Color::WHITE);
/// assert_eq!(ledger.contiguous_ready(), 0); // pixel 0 still pending
/// ledger.complete(0, Color::BLACK);
/// assert_eq!(ledger.contiguous_ready(), 2);
/// let written = ledger.take_writable();
/// assert_eq!(written.len(), 2);
/// assert_eq!(ledger.assign(8), vec![2, 3]); // slots recycled
/// ```
#[derive(Debug, Clone)]
pub struct PixelLedger {
    total: u32,
    capacity: u32,
    /// Next pixel index never yet assigned.
    next_unassigned: u32,
    /// Next pixel index to write to the picture file.
    next_to_write: u32,
    /// Completed colours keyed by `index - next_to_write` position, as a
    /// reorder window.
    completed: Vec<Option<Color>>,
    outstanding: u32,
}

impl PixelLedger {
    /// Creates a ledger for `total` pixels with an in-flight capacity of
    /// `capacity` pixels — the paper's pixel-queue length constant.
    ///
    /// # Panics
    ///
    /// Panics if `total` or `capacity` is zero.
    pub fn new(total: u32, capacity: u32) -> Self {
        assert!(total > 0, "image must have pixels");
        assert!(capacity > 0, "pixel queue capacity must be nonzero");
        PixelLedger {
            total,
            capacity,
            next_unassigned: 0,
            next_to_write: 0,
            completed: Vec::new(),
            outstanding: 0,
        }
    }

    /// Total pixels in the image.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Pixels currently in flight (assigned or completed-but-unwritten).
    pub fn in_flight(&self) -> u32 {
        self.outstanding + self.completed.iter().filter(|c| c.is_some()).count() as u32
    }

    /// Pixels that can still be assigned right now (free queue slots and
    /// image remainder permitting).
    pub fn assignable(&self) -> u32 {
        let free_slots = self.capacity.saturating_sub(self.in_flight());
        free_slots.min(self.total - self.next_unassigned)
    }

    /// Assigns up to `want` pixels, bounded by the queue capacity.
    /// Returns the assigned linear indices (possibly empty).
    pub fn assign(&mut self, want: u32) -> Vec<u32> {
        let n = want.min(self.assignable());
        let start = self.next_unassigned;
        self.next_unassigned += n;
        self.outstanding += n;
        (start..start + n).collect()
    }

    /// Records a computed pixel.
    ///
    /// # Panics
    ///
    /// Panics if the pixel was not outstanding (double completion or
    /// never assigned).
    pub fn complete(&mut self, index: u32, color: Color) {
        assert!(
            index < self.next_unassigned,
            "pixel {index} was never assigned"
        );
        assert!(index >= self.next_to_write, "pixel {index} already written");
        let pos = (index - self.next_to_write) as usize;
        if self.completed.len() <= pos {
            self.completed.resize(pos + 1, None);
        }
        assert!(
            self.completed[pos].is_none(),
            "pixel {index} completed twice"
        );
        self.completed[pos] = Some(color);
        self.outstanding -= 1;
    }

    /// Length of the contiguous completed stretch at the write head.
    pub fn contiguous_ready(&self) -> u32 {
        self.completed.iter().take_while(|c| c.is_some()).count() as u32
    }

    /// Removes and returns the contiguous completed stretch as
    /// `(index, colour)` pairs, advancing the write head and freeing
    /// queue slots.
    pub fn take_writable(&mut self) -> Vec<(u32, Color)> {
        let n = self.contiguous_ready() as usize;
        let mut out = Vec::with_capacity(n);
        for (k, c) in self.completed.drain(..n).enumerate() {
            out.push((self.next_to_write + k as u32, c.expect("contiguous prefix")));
        }
        self.next_to_write += n as u32;
        out
    }

    /// Returns `true` once every pixel has been written.
    pub fn is_complete(&self) -> bool {
        self.next_to_write == self.total
    }

    /// Pixels already written to the picture file.
    pub fn written(&self) -> u32 {
        self.next_to_write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn capacity_bounds_in_flight() {
        let mut l = PixelLedger::new(100, 10);
        assert_eq!(l.assign(50).len(), 10);
        assert_eq!(l.assignable(), 0);
        // Completing without writing does NOT free slots: the pixel
        // still occupies the reorder window.
        l.complete(5, Color::BLACK);
        assert_eq!(l.assignable(), 0);
        assert_eq!(l.in_flight(), 10);
        // Only writing frees slots — and pixel 5 is not contiguous.
        assert_eq!(l.take_writable().len(), 0);
        l.complete(0, Color::BLACK);
        assert_eq!(l.take_writable().len(), 1);
        assert_eq!(l.assignable(), 1);
    }

    #[test]
    fn out_of_order_completion_reorders() {
        let mut l = PixelLedger::new(6, 6);
        let assigned = l.assign(6);
        assert_eq!(assigned, vec![0, 1, 2, 3, 4, 5]);
        for &i in &[3, 1, 2] {
            l.complete(i, Color::grey(i as f64));
        }
        assert_eq!(l.contiguous_ready(), 0);
        l.complete(0, Color::grey(0.0));
        assert_eq!(l.contiguous_ready(), 4);
        let w = l.take_writable();
        assert_eq!(
            w.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(!l.is_complete());
        l.complete(4, Color::BLACK);
        l.complete(5, Color::BLACK);
        l.take_writable();
        assert!(l.is_complete());
        assert_eq!(l.written(), 6);
    }

    #[test]
    #[should_panic(expected = "never assigned")]
    fn completing_unassigned_panics() {
        PixelLedger::new(4, 4).complete(0, Color::BLACK);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut l = PixelLedger::new(4, 4);
        l.assign(2);
        l.complete(1, Color::BLACK);
        l.complete(1, Color::WHITE);
    }

    proptest! {
        /// Whatever the completion order, every pixel is written exactly
        /// once and in index order.
        #[test]
        fn conservation_under_random_order(
            perm in proptest::sample::subsequence((0u32..40).collect::<Vec<_>>(), 40),
            cap in 1u32..50,
        ) {
            // `perm` is 0..40 in order; shuffle deterministically by
            // reversing chunks to get an out-of-order completion stream.
            let mut order: Vec<u32> = perm;
            order.chunks_mut(7).for_each(|c| c.reverse());

            let mut l = PixelLedger::new(40, cap);
            let mut written: Vec<u32> = Vec::new();
            let mut pending: Vec<u32> = Vec::new();
            let mut oi = 0usize;
            while !l.is_complete() {
                pending.extend(l.assign(cap));
                // Complete pending pixels in the shuffled order.
                let mut progressed = false;
                while oi < order.len() {
                    let target = order[oi];
                    if let Some(pos) = pending.iter().position(|&p| p == target) {
                        pending.swap_remove(pos);
                        l.complete(target, Color::BLACK);
                        oi += 1;
                        progressed = true;
                    } else {
                        break;
                    }
                }
                if !progressed && !pending.is_empty() {
                    // Complete any pending pixel to guarantee progress.
                    let p = pending.pop().unwrap();
                    l.complete(p, Color::BLACK);
                }
                written.extend(l.take_writable().into_iter().map(|(i, _)| i));
            }
            prop_assert_eq!(written.len(), 40);
            prop_assert!(written.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }
}
