//! Instrumentation points of the parallel ray tracer.
//!
//! These are the paper's Figure 6 measurement points (the horizontal
//! bars in the master/servant flow charts), plus the agent states of
//! Figure 9. Each token marks the *beginning* of a program phase; the
//! explicit `…_END` tokens exist where the paper has them ("Send Jobs
//! End", "Write Pixels End").
//!
//! The 32-bit parameter field carries the job sequence number for
//! job-related events (enabling causality checks across nodes) and the
//! agent index for agent events (enabling per-agent Gantt tracks even
//! though all agents share the master's display channel).

use hybridmon::TokenRegistry;
use simple::ActivityModel;

// ---------------------------------------------------------------------
// Master (Figure 6, left).
// ---------------------------------------------------------------------

/// Master: "Distribute Jobs Begin".
pub const DISTRIBUTE_JOBS_BEGIN: u16 = 0x0101;
/// Master: "Send Jobs Begin".
pub const SEND_JOBS_BEGIN: u16 = 0x0102;
/// Master: "Send Jobs End".
pub const SEND_JOBS_END: u16 = 0x0103;
/// Master: "Wait for Results Begin".
pub const WAIT_RESULTS_BEGIN: u16 = 0x0104;
/// Master: "Receive Results Begin".
pub const RECEIVE_RESULTS_BEGIN: u16 = 0x0105;
/// Master: "Write Pixels Begin".
pub const WRITE_PIXELS_BEGIN: u16 = 0x0106;
/// Master: "Write Pixels End".
pub const WRITE_PIXELS_END: u16 = 0x0107;

// ---------------------------------------------------------------------
// Servant (Figure 6, right).
// ---------------------------------------------------------------------

/// Servant: "Work Begin".
pub const WORK_BEGIN: u16 = 0x0201;
/// Servant: "Send Results Begin" (instrumented from version 2 on — the
/// paper added it between the Fig. 7/8 and Fig. 9 measurements).
pub const SEND_RESULTS_BEGIN: u16 = 0x0202;
/// Servant: "Wait for Job Begin".
pub const WAIT_JOB_BEGIN: u16 = 0x0203;

// ---------------------------------------------------------------------
// Communication agents (Figure 9).
// ---------------------------------------------------------------------

/// Agent: "Wake Up".
pub const AGENT_WAKE_UP: u16 = 0x0301;
/// Agent: "Forward Message".
pub const AGENT_FORWARD: u16 = 0x0302;
/// Agent: "Freed" (the receiver accepted the forwarded message).
pub const AGENT_FREED: u16 = 0x0303;
/// Agent: "Sleep".
pub const AGENT_SLEEP: u16 = 0x0304;

/// The declared point map: `(token id, activity name, group)` for every
/// instrumentation point above, in declaration order.
///
/// This is the raw, uncollapsed list a static analyzer wants to lint —
/// unlike [`registry`], which silently collapses colliding ids into a
/// map. Names follow the paper's convention: a `… End` name closes the
/// activity of the same base name; any other name begins an activity
/// that the role's next point implicitly ends.
pub fn point_map() -> Vec<(u16, &'static str, &'static str)> {
    vec![
        (DISTRIBUTE_JOBS_BEGIN, "Distribute Jobs", "Master"),
        (SEND_JOBS_BEGIN, "Send Jobs", "Master"),
        (SEND_JOBS_END, "Send Jobs End", "Master"),
        (WAIT_RESULTS_BEGIN, "Wait for Results", "Master"),
        (RECEIVE_RESULTS_BEGIN, "Receive Results", "Master"),
        (WRITE_PIXELS_BEGIN, "Write Pixels", "Master"),
        (WRITE_PIXELS_END, "Write Pixels End", "Master"),
        (WORK_BEGIN, "Work", "Servant"),
        (SEND_RESULTS_BEGIN, "Send Results", "Servant"),
        (WAIT_JOB_BEGIN, "Wait for Job", "Servant"),
        (AGENT_WAKE_UP, "Wake Up", "Agent"),
        (AGENT_FORWARD, "Forward Message", "Agent"),
        (AGENT_FREED, "Freed", "Agent"),
        (AGENT_SLEEP, "Sleep", "Agent"),
    ]
}

/// Registry naming every instrumentation point (for reports).
pub fn registry() -> TokenRegistry {
    let mut reg = TokenRegistry::new();
    for (token, name, group) in point_map() {
        reg.register(token.into(), name, group);
    }
    reg
}

/// Activity model for a master track (Gantt rows of Figures 7 and 9).
///
/// The `…_END` tokens return the master to the surrounding phase:
/// "Send Jobs End" begins the wait, "Write Pixels End" begins the next
/// distribution.
pub fn master_activity_model() -> ActivityModel {
    let mut m = ActivityModel::new();
    m.state(DISTRIBUTE_JOBS_BEGIN, "Distribute Jobs")
        .state(SEND_JOBS_BEGIN, "Send Jobs")
        .state(SEND_JOBS_END, "Distribute Jobs")
        .state(WAIT_RESULTS_BEGIN, "Wait for Results")
        .state(RECEIVE_RESULTS_BEGIN, "Receive Results")
        .state(WRITE_PIXELS_BEGIN, "Write Pixels")
        .state(WRITE_PIXELS_END, "Distribute Jobs");
    m
}

/// Activity model for a servant track (Gantt rows of Figures 7–9).
pub fn servant_activity_model() -> ActivityModel {
    let mut m = ActivityModel::new();
    m.state(WORK_BEGIN, "Work")
        .state(SEND_RESULTS_BEGIN, "Send Results")
        .state(WAIT_JOB_BEGIN, "Wait for Job");
    m
}

/// Activity model for an agent track (Figure 9's bottom band).
pub fn agent_activity_model() -> ActivityModel {
    let mut m = ActivityModel::new();
    m.state(AGENT_WAKE_UP, "Wake Up")
        .state(AGENT_FORWARD, "Forward Message")
        .state(AGENT_FREED, "Freed")
        .state(AGENT_SLEEP, "Sleep");
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmon::EventToken;

    #[test]
    fn point_map_matches_registry() {
        let map = point_map();
        assert_eq!(map.len(), 14);
        let reg = registry();
        for (token, name, group) in map {
            assert_eq!(reg.name(EventToken::new(token)), Some(name));
            assert_eq!(reg.group(EventToken::new(token)), Some(group));
        }
    }

    #[test]
    fn registry_covers_all_tokens() {
        let reg = registry();
        assert_eq!(reg.len(), 14);
        assert_eq!(reg.name(EventToken::new(WORK_BEGIN)), Some("Work"));
        assert_eq!(reg.group(EventToken::new(AGENT_FREED)), Some("Agent"));
    }

    #[test]
    fn activity_models_are_disjoint_by_group() {
        let master = master_activity_model();
        let servant = servant_activity_model();
        // A servant token must not drive the master's state machine:
        // they share a display channel only for agents, but defensive
        // disjointness keeps derivations independent.
        assert!(master.state_of(EventToken::new(WORK_BEGIN)).is_none());
        assert!(servant.state_of(EventToken::new(SEND_JOBS_BEGIN)).is_none());
        assert!(agent_activity_model()
            .state_of(EventToken::new(WORK_BEGIN))
            .is_none());
    }

    #[test]
    fn end_tokens_return_to_enclosing_phase() {
        let m = master_activity_model();
        assert_eq!(
            m.state_of(EventToken::new(SEND_JOBS_END)),
            Some("Distribute Jobs")
        );
        assert_eq!(
            m.state_of(EventToken::new(WRITE_PIXELS_END)),
            Some("Distribute Jobs")
        );
    }
}
