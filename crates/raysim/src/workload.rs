//! The ray tracer as a [`pipeline::Workload`].
//!
//! This is the first (and historically the original) workload of the
//! measurement pipeline: [`AppConfig`] declares the Figure 6 token map
//! and the protocol's proven orderings, launches the master on node 0,
//! and folds the rendered image plus the application counters back out
//! of the finished machine.

use std::sync::Arc;

use pipeline::{Harvest, OrderEdge, RunMetrics, TokenDecl, Workload};
use raytracer::Framebuffer;
use simple::Trace;
use suprenum::{Machine, NodeId};

use crate::analysis::{servant_utilization, servant_utilization_steady, steady_phase, work_phase};
use crate::config::AppConfig;
use crate::context::{AppStats, RenderContext, Shared};
use crate::master::Master;
use crate::tokens;

/// What a ray-tracer run folds out of the machine: the image assembled
/// by the master's pixel writes, plus the application counters.
#[derive(Debug, Clone)]
pub struct RenderOutput {
    /// The rendered image.
    pub image: Framebuffer,
    /// Application counters (jobs sent, results received, …).
    pub stats: AppStats,
}

/// The orderings guaranteed by message causality and the blocking
/// mailbox protocol, as witnessed by the analyzer's scheduler model: a
/// message is accepted only after its send began, so each job's
/// instrumentation points are totally ordered across nodes. Jobs are
/// matched globally by the job id in the event parameter — one job id
/// exists once in the whole system.
pub fn proven_orders(app: &AppConfig) -> Vec<OrderEdge> {
    let mut orders = vec![
        OrderEdge::global(
            "job-sent-before-work",
            tokens::SEND_JOBS_BEGIN,
            tokens::WORK_BEGIN,
            "a servant can only start working on a job after the master began sending it",
        ),
        OrderEdge::global(
            "work-before-result-received",
            tokens::WORK_BEGIN,
            tokens::RECEIVE_RESULTS_BEGIN,
            "the master can only receive a result after the servant started the work",
        ),
    ];
    if app.instrument_send_results {
        orders.push(OrderEdge::global(
            "work-before-result-sent",
            tokens::WORK_BEGIN,
            tokens::SEND_RESULTS_BEGIN,
            "a servant sends a result only after starting its work",
        ));
        orders.push(OrderEdge::global(
            "result-sent-before-received",
            tokens::SEND_RESULTS_BEGIN,
            tokens::RECEIVE_RESULTS_BEGIN,
            "the master can only receive a result after the servant began sending it",
        ));
    }
    orders
}

impl Workload for AppConfig {
    type Output = RenderOutput;

    fn id(&self) -> &'static str {
        "raytracer"
    }

    fn validate(&self) -> Result<(), String> {
        AppConfig::validate(self)
    }

    fn nodes_required(&self) -> u32 {
        u32::from(self.servants) + 1
    }

    fn wants_kernel_events(&self) -> bool {
        self.kernel_events
    }

    fn token_map(&self) -> Vec<TokenDecl> {
        tokens::point_map()
            .into_iter()
            .map(|(token, name, group)| TokenDecl::new(token, name, group))
            .collect()
    }

    fn proven_orders(&self) -> Vec<OrderEdge> {
        proven_orders(self)
    }

    fn launch(&self, machine: &mut Machine) -> Harvest<RenderOutput> {
        let app = Arc::new(self.clone());
        let ctx = RenderContext::new(&app);
        let stats = Shared::new(AppStats::default());
        let fb = Shared::new(Framebuffer::new(app.width, app.height));

        let master = Master::new(app, ctx, stats.clone(), fb.clone());
        machine.add_process(NodeId::new(0), master);

        Box::new(move |_machine| {
            // The image is *taken* out of the shared cell (leaving the
            // empty default behind) instead of being deep-copied — a
            // truncated run leaves the master alive holding its clone,
            // so the handle is not necessarily unique.
            let image = std::mem::take(&mut *fb.borrow_mut());
            let stats = *stats.borrow();
            RenderOutput { image, stats }
        })
    }

    fn metrics(&self, trace: &Trace, truncated: bool, output: &RenderOutput) -> RunMetrics {
        let servants = u32::from(self.servants);
        let has_phase = work_phase(trace).is_some();
        let utilization_percent = (!truncated && has_phase && servants > 0)
            .then(|| servant_utilization(trace, servants).mean_percent());
        let steady_percent = (!truncated && servants > 0 && steady_phase(trace).is_some())
            .then(|| servant_utilization_steady(trace, servants).mean_percent());
        RunMetrics {
            work_units: output.stats.jobs_sent,
            utilization_percent,
            steady_percent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SceneKind, Version};
    use pipeline::{run_workload, PipelineConfig};

    fn tiny_app(version: Version) -> AppConfig {
        let mut app = AppConfig::version(version);
        app.servants = 2;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        app
    }

    #[test]
    fn raytracer_runs_through_the_generic_pipeline() {
        let result = run_workload(PipelineConfig::new(tiny_app(Version::V4)));
        assert!(result.completed());
        assert!(result.output.image.mean_luminance() > 0.0);
        assert!(result.output.stats.jobs_sent > 0);
        let metrics = result.metrics(&tiny_app(Version::V4));
        assert_eq!(metrics.work_units, result.output.stats.jobs_sent);
        assert!(metrics.utilization_percent.is_some());
    }

    #[test]
    fn declared_orders_follow_instrumentation() {
        assert_eq!(proven_orders(&tiny_app(Version::V1)).len(), 2);
        let v4 = proven_orders(&tiny_app(Version::V4));
        assert_eq!(v4.len(), 4);
        assert!(v4.iter().any(|o| o.name == "result-sent-before-received"));
    }

    #[test]
    fn token_map_matches_the_declared_points() {
        let map = Workload::token_map(&tiny_app(Version::V4));
        assert_eq!(map.len(), 14);
        assert_eq!(map[0].group, "Master");
    }
}
