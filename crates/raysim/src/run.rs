//! End-to-end experiment runner: machine + application + monitor.
//!
//! Historically this module *was* the measurement pipeline; today the
//! workload-agnostic parts (machine sizing, ZM4 probing, SIMPLE trace
//! conversion, intrusion accounting) live in the [`pipeline`] crate and
//! the ray tracer is just its first [`pipeline::Workload`] (see
//! [`crate::workload`]). [`run`] and [`RunConfig`] remain as the
//! stable, ray-tracer-shaped facade: every figure binary, experiment,
//! and test that predates the extraction keeps working unchanged, and a
//! differential test pins the facade's traces bit-identical to the
//! generic path's.

use std::fmt;

use des::time::SimTime;
use hybridmon::IntrusionReport;
use pipeline::{PipelineConfig, Preflight};
use raytracer::Framebuffer;
use simple::Trace;
use suprenum::{Machine, MachineConfig, RunEnd, RunOutcome};
use zm4::{Measurement, ProbeSample, Zm4Config};

use crate::config::AppConfig;
use crate::context::AppStats;

pub use pipeline::{PreflightDenied, PreflightSummary};

/// Whether (and how strictly) [`run`] analyzes its configuration before
/// executing it.
///
/// The hook is a plain `fn` pointer so the analyzer crate can supply it
/// without a dependency cycle: `raysim` defines the seam, the analyzer
/// fills it, and callers pick the policy. This is the legacy,
/// `RunConfig`-shaped twin of [`pipeline::Preflight`]; new code should
/// configure the pipeline's seam directly.
#[derive(Debug, Clone, Copy, Default)]
pub enum PreflightPolicy {
    /// Run without any pre-flight analysis.
    #[default]
    Off,
    /// Analyze, print any findings to stderr, and run regardless — the
    /// mode for reproducing the paper's measurements, where version 3's
    /// queue bug must execute to be measured.
    Warn(fn(&RunConfig) -> PreflightSummary),
    /// Analyze and refuse to run a configuration with errors.
    Deny(fn(&RunConfig) -> PreflightSummary),
}

/// Full configuration of one measurement run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The application (program version, scene, image, …).
    pub app: AppConfig,
    /// The machine (nodes, buses, scheduler, monitoring mode).
    pub machine: MachineConfig,
    /// The monitor (FIFO, clocks, MTG).
    pub zm4: Zm4Config,
    /// Determinism seed for machine and monitor.
    pub seed: u64,
    /// Simulated-time budget.
    pub horizon: SimTime,
    /// Pre-flight static analysis policy.
    pub preflight: PreflightPolicy,
    /// Monitor-plane observer shards (1 = the sequential oracle).
    /// Sharding is behaviourally invisible: traces and outcomes stay
    /// bit-identical for any count.
    pub shards: usize,
}

impl RunConfig {
    /// A run configuration with a machine sized for the application:
    /// one cluster of `servants + 1` nodes (the paper's setup) when they
    /// fit, or the minimum number of 16-node clusters otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the application configuration is invalid.
    pub fn new(app: AppConfig) -> Self {
        app.validate().expect("invalid application configuration");
        let machine = pipeline::machine_for(app.servants as u32 + 1);
        RunConfig {
            app,
            machine,
            zm4: Zm4Config::default(),
            seed: 1992,
            horizon: SimTime::from_secs(3_600),
            preflight: PreflightPolicy::default(),
            shards: 1,
        }
    }

    /// Converts this legacy configuration into the generic pipeline's,
    /// dropping the legacy pre-flight policy (its hook is shaped around
    /// `RunConfig` and cannot cross; run it first via [`preflight`], or
    /// configure [`pipeline::Preflight`] on the result).
    pub fn into_pipeline(self) -> PipelineConfig<AppConfig> {
        PipelineConfig {
            workload: self.app,
            machine: self.machine,
            zm4: self.zm4,
            seed: self.seed,
            horizon: self.horizon,
            preflight: Preflight::off(),
            shards: self.shards,
            engine_shards: 1,
            faults: pipeline::FaultConfig::default(),
        }
    }
}

/// Everything a measurement run produced.
#[derive(Debug)]
pub struct RunResult {
    /// How the application run ended.
    pub outcome: RunOutcome,
    /// The ZM4 measurement (merged trace + recorder/detector stats).
    pub measurement: Measurement,
    /// The merged trace as SIMPLE events (channel = node index).
    pub trace: Trace,
    /// The rendered image, as assembled by the master's pixel writes.
    pub image: Framebuffer,
    /// Application counters.
    pub app_stats: AppStats,
    /// The machine after the run (ground truth, signals, kernel stats).
    pub machine: Machine,
    /// Monitoring intrusion accounting (copied out of the machine for
    /// convenience).
    pub intrusion: IntrusionReport,
}

impl RunResult {
    /// Returns `true` if the application ran to completion.
    pub fn completed(&self) -> bool {
        self.outcome.reason == RunEnd::Completed
    }

    /// Returns `true` if the run was cut short by the horizon, an event
    /// budget, the operator's job time limit, or a deadlock. Statistics
    /// derived from a truncated run describe an interrupted execution.
    pub fn truncated(&self) -> bool {
        self.outcome.truncated()
    }

    /// Kernel events the simulation processed.
    pub fn events_processed(&self) -> u64 {
        self.outcome.events
    }

    /// Errors if the run did not complete, with a report naming the
    /// truncation kind, the simulated end time, and the events
    /// processed. Figure and experiment binaries use this to fail
    /// loudly (non-zero exit) instead of printing statistics from an
    /// interrupted measurement as if they were valid.
    ///
    /// # Errors
    ///
    /// Returns [`TruncatedRun`] when the outcome is anything but
    /// [`RunEnd::Completed`].
    pub fn ensure_completed(&self) -> Result<(), TruncatedRun> {
        if self.completed() {
            Ok(())
        } else {
            Err(TruncatedRun {
                reason: self.outcome.reason,
                end: self.outcome.end,
                events: self.outcome.events,
            })
        }
    }
}

/// A measurement run that did not reach completion (see
/// [`RunResult::ensure_completed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedRun {
    /// How the run actually ended.
    pub reason: RunEnd,
    /// Simulated time at truncation.
    pub end: SimTime,
    /// Kernel events processed before truncation.
    pub events: u64,
}

impl fmt::Display for TruncatedRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run truncated ({}) at t={} after {} kernel events; \
             its statistics do not describe a complete execution",
            self.reason, self.end, self.events
        )
    }
}

impl std::error::Error for TruncatedRun {}

/// Converts a machine's display signal log into ZM4 probe samples
/// (channel = node index).
pub fn probe_samples(machine: &Machine) -> Vec<ProbeSample> {
    pipeline::probe_samples(machine)
}

/// Converts a ZM4 measurement's merged trace into SIMPLE events.
pub fn to_simple_trace(measurement: &Measurement) -> Trace {
    pipeline::to_simple_trace(measurement)
}

/// Runs the configured pre-flight analysis without panicking.
///
/// All findings are printed to stderr *before* the verdict is taken, so
/// a denied run still reports everything the analysis found — not just
/// the first failure.
///
/// # Errors
///
/// Returns [`PreflightDenied`] (carrying the complete summary) under
/// [`PreflightPolicy::Deny`] when the analysis reports errors.
pub fn try_preflight(cfg: &RunConfig) -> Result<Option<PreflightSummary>, PreflightDenied> {
    let (summary, deny) = match cfg.preflight {
        PreflightPolicy::Off => return Ok(None),
        PreflightPolicy::Warn(hook) => (hook(cfg), false),
        PreflightPolicy::Deny(hook) => (hook(cfg), true),
    };
    if summary.errors + summary.warnings > 0 {
        eprintln!("{}", summary.rendered.trim_end());
    }
    if deny && summary.errors > 0 {
        return Err(PreflightDenied { summary });
    }
    Ok(Some(summary))
}

/// Runs the configured pre-flight analysis, printing findings to
/// stderr.
///
/// # Panics
///
/// Panics under [`PreflightPolicy::Deny`] when the analysis reports
/// errors — after every finding has been printed.
pub fn preflight(cfg: &RunConfig) -> Option<PreflightSummary> {
    match try_preflight(cfg) {
        Ok(summary) => summary,
        Err(denied) => panic!("{denied}"),
    }
}

/// Runs one full measurement.
///
/// This is a thin facade over [`pipeline::run_workload`] with the ray
/// tracer as the workload: the legacy pre-flight policy runs first,
/// then the generic pipeline executes the measurement.
///
/// # Panics
///
/// Panics if the machine configuration cannot host the application
/// (fewer nodes than `servants + 1`), is invalid, or a
/// [`PreflightPolicy::Deny`] analysis reports errors.
///
/// # Examples
///
/// ```
/// use des::time::SimTime;
/// use raysim::config::{AppConfig, SceneKind, Version};
/// use raysim::run::{run, RunConfig};
///
/// let mut app = AppConfig::version(Version::V4);
/// app.servants = 3;
/// app.scene = SceneKind::Quickstart;
/// app.width = 8;
/// app.height = 8;
/// let mut cfg = RunConfig::new(app);
/// cfg.horizon = SimTime::from_secs(600);
/// let result = run(cfg);
/// assert!(result.completed());
/// assert!(result.image.mean_luminance() > 0.0);
/// ```
pub fn run(cfg: RunConfig) -> RunResult {
    preflight(&cfg);
    let result = pipeline::run_workload(cfg.into_pipeline());
    RunResult {
        outcome: result.outcome,
        measurement: result.measurement,
        trace: result.trace,
        image: result.output.image,
        app_stats: result.output.stats,
        machine: result.machine,
        intrusion: result.intrusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SceneKind, Version};

    fn tiny_cfg() -> RunConfig {
        let mut app = AppConfig::version(Version::V4);
        app.servants = 2;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        RunConfig::new(app)
    }

    // The facade and the generic pipeline must be the same measurement:
    // identical outcome and an event-for-event identical trace.
    #[test]
    fn facade_matches_generic_pipeline_bit_for_bit() {
        let legacy = run(tiny_cfg());
        let generic = pipeline::run_workload(tiny_cfg().into_pipeline());
        assert_eq!(legacy.outcome.end, generic.outcome.end);
        assert_eq!(legacy.outcome.reason, generic.outcome.reason);
        assert_eq!(legacy.outcome.events, generic.outcome.events);
        assert_eq!(legacy.trace.len(), generic.trace.len());
        for (a, b) in legacy.trace.events().iter().zip(generic.trace.events()) {
            assert_eq!(
                (a.ts_ns, a.channel, a.token, a.param),
                (b.ts_ns, b.channel, b.token, b.param)
            );
        }
        assert_eq!(legacy.app_stats.jobs_sent, generic.output.stats.jobs_sent);
        assert_eq!(
            legacy.image.mean_luminance(),
            generic.output.image.mean_luminance()
        );
    }

    // Sharding the monitor plane through the facade must not perturb
    // the measurement at all.
    #[test]
    fn sharded_facade_matches_the_oracle() {
        let reference = run(tiny_cfg());
        let mut cfg = tiny_cfg();
        cfg.shards = 2;
        let sharded = run(cfg);
        assert_eq!(reference.outcome, sharded.outcome);
        assert_eq!(reference.trace, sharded.trace);
        assert_eq!(
            reference.image.mean_luminance(),
            sharded.image.mean_luminance()
        );
    }

    // A truncated run leaves the master alive holding its framebuffer
    // handle; the harvest must still hand the image back (by take, not
    // by clone) without panicking.
    #[test]
    fn truncated_run_still_yields_the_image() {
        let mut cfg = tiny_cfg();
        cfg.horizon = SimTime::from_millis(1);
        let result = run(cfg);
        assert!(result.truncated());
        // 8×8 was allocated; the take preserves the real buffer.
        assert_eq!(result.image.pixel_count(), 64);
    }
}
