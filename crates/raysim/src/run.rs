//! End-to-end experiment runner: machine + application + monitor.
//!
//! [`run`] wires everything together the way the real measurement was
//! set up: the instrumented parallel ray tracer executes on the
//! simulated SUPRENUM; every seven-segment display write is probed by a
//! simulated ZM4 whose event recorders produce the merged global trace;
//! the trace is handed back for SIMPLE-style evaluation.

use std::cell::RefCell;
use std::rc::Rc;

use des::time::SimTime;
use hybridmon::IntrusionReport;
use raytracer::Framebuffer;
use simple::Trace;
use suprenum::{Machine, MachineConfig, NodeId, RunEnd, RunOutcome};
use zm4::{Measurement, ProbeSample, Zm4, Zm4Config};

use crate::config::AppConfig;
use crate::context::{AppStats, RenderContext};
use crate::master::Master;

/// What a pre-flight analysis of a run configuration concluded.
///
/// Produced by an externally supplied hook (see [`PreflightPolicy`]);
/// kept deliberately flat — counts plus pre-rendered text — so this
/// crate needs no knowledge of the analyzer's diagnostic model.
#[derive(Debug, Clone, Default)]
pub struct PreflightSummary {
    /// Findings that predict a broken measurement (deadlock, event loss,
    /// corrupted attribution).
    pub errors: usize,
    /// Findings that predict a distorted measurement.
    pub warnings: usize,
    /// The findings, rendered for a terminal.
    pub rendered: String,
}

/// Whether (and how strictly) [`run`] analyzes its configuration before
/// executing it.
///
/// The hook is a plain `fn` pointer so the analyzer crate can supply it
/// without a dependency cycle: `raysim` defines the seam, the analyzer
/// fills it, and callers pick the policy.
#[derive(Debug, Clone, Copy, Default)]
pub enum PreflightPolicy {
    /// Run without any pre-flight analysis.
    #[default]
    Off,
    /// Analyze, print any findings to stderr, and run regardless — the
    /// mode for reproducing the paper's measurements, where version 3's
    /// queue bug must execute to be measured.
    Warn(fn(&RunConfig) -> PreflightSummary),
    /// Analyze and refuse to run a configuration with errors.
    Deny(fn(&RunConfig) -> PreflightSummary),
}

/// Full configuration of one measurement run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The application (program version, scene, image, …).
    pub app: AppConfig,
    /// The machine (nodes, buses, scheduler, monitoring mode).
    pub machine: MachineConfig,
    /// The monitor (FIFO, clocks, MTG).
    pub zm4: Zm4Config,
    /// Determinism seed for machine and monitor.
    pub seed: u64,
    /// Simulated-time budget.
    pub horizon: SimTime,
    /// Pre-flight static analysis policy.
    pub preflight: PreflightPolicy,
}

impl RunConfig {
    /// A run configuration with a machine sized for the application:
    /// one cluster of `servants + 1` nodes (the paper's setup) when they
    /// fit, or the minimum number of 16-node clusters otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the application configuration is invalid.
    pub fn new(app: AppConfig) -> Self {
        app.validate().expect("invalid application configuration");
        let nodes = app.servants as u32 + 1;
        let machine = if nodes <= 16 {
            MachineConfig::single_cluster(nodes as u8)
        } else {
            let clusters = nodes.div_ceil(16) as u8;
            MachineConfig {
                clusters,
                torus_cols: 1,
                ..MachineConfig::single_cluster(16)
            }
        };
        RunConfig {
            app,
            machine,
            zm4: Zm4Config::default(),
            seed: 1992,
            horizon: SimTime::from_secs(3_600),
            preflight: PreflightPolicy::default(),
        }
    }
}

/// Everything a measurement run produced.
#[derive(Debug)]
pub struct RunResult {
    /// How the application run ended.
    pub outcome: RunOutcome,
    /// The ZM4 measurement (merged trace + recorder/detector stats).
    pub measurement: Measurement,
    /// The merged trace as SIMPLE events (channel = node index).
    pub trace: Trace,
    /// The rendered image, as assembled by the master's pixel writes.
    pub image: Framebuffer,
    /// Application counters.
    pub app_stats: AppStats,
    /// The machine after the run (ground truth, signals, kernel stats).
    pub machine: Machine,
    /// Monitoring intrusion accounting (copied out of the machine for
    /// convenience).
    pub intrusion: IntrusionReport,
}

impl RunResult {
    /// Returns `true` if the application ran to completion.
    pub fn completed(&self) -> bool {
        self.outcome.reason == RunEnd::Completed
    }

    /// Returns `true` if the run was cut short by the horizon, an event
    /// budget, the operator's job time limit, or a deadlock. Statistics
    /// derived from a truncated run describe an interrupted execution.
    pub fn truncated(&self) -> bool {
        self.outcome.truncated()
    }

    /// Kernel events the simulation processed.
    pub fn events_processed(&self) -> u64 {
        self.outcome.events
    }

    /// Errors if the run did not complete, with a report naming the
    /// truncation kind, the simulated end time, and the events
    /// processed. Figure and experiment binaries use this to fail
    /// loudly (non-zero exit) instead of printing statistics from an
    /// interrupted measurement as if they were valid.
    ///
    /// # Errors
    ///
    /// Returns [`TruncatedRun`] when the outcome is anything but
    /// [`RunEnd::Completed`].
    pub fn ensure_completed(&self) -> Result<(), TruncatedRun> {
        if self.completed() {
            Ok(())
        } else {
            Err(TruncatedRun {
                reason: self.outcome.reason,
                end: self.outcome.end,
                events: self.outcome.events,
            })
        }
    }
}

/// A measurement run that did not reach completion (see
/// [`RunResult::ensure_completed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedRun {
    /// How the run actually ended.
    pub reason: RunEnd,
    /// Simulated time at truncation.
    pub end: SimTime,
    /// Kernel events processed before truncation.
    pub events: u64,
}

impl std::fmt::Display for TruncatedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run truncated ({}) at t={} after {} kernel events; \
             its statistics do not describe a complete execution",
            self.reason, self.end, self.events
        )
    }
}

impl std::error::Error for TruncatedRun {}

/// Converts a machine's display signal log into ZM4 probe samples
/// (channel = node index).
pub fn probe_samples(machine: &Machine) -> Vec<ProbeSample> {
    machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
        .collect()
}

/// Converts a ZM4 measurement's merged trace into SIMPLE events.
pub fn to_simple_trace(measurement: &Measurement) -> Trace {
    measurement
        .trace
        .iter()
        .map(|r| {
            simple::Event::new(
                r.ts_ns,
                r.channel,
                r.event.token.value(),
                r.event.param.value(),
            )
        })
        .collect()
}

/// A pre-flight analysis that refused the run (see [`try_preflight`]).
///
/// Carries the complete summary — every finding, not just the first —
/// so a caller batching many configurations can surface all of them
/// before failing.
#[derive(Debug, Clone)]
pub struct PreflightDenied {
    /// The full analysis summary, findings included.
    pub summary: PreflightSummary,
}

impl std::fmt::Display for PreflightDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pre-flight analysis found {} error(s); refusing to run:\n{}",
            self.summary.errors, self.summary.rendered
        )
    }
}

impl std::error::Error for PreflightDenied {}

/// Runs the configured pre-flight analysis without panicking.
///
/// All findings are printed to stderr *before* the verdict is taken, so
/// a denied run still reports everything the analysis found — not just
/// the first failure.
///
/// # Errors
///
/// Returns [`PreflightDenied`] (carrying the complete summary) under
/// [`PreflightPolicy::Deny`] when the analysis reports errors.
pub fn try_preflight(cfg: &RunConfig) -> Result<Option<PreflightSummary>, PreflightDenied> {
    let (summary, deny) = match cfg.preflight {
        PreflightPolicy::Off => return Ok(None),
        PreflightPolicy::Warn(hook) => (hook(cfg), false),
        PreflightPolicy::Deny(hook) => (hook(cfg), true),
    };
    if summary.errors + summary.warnings > 0 {
        eprintln!("{}", summary.rendered.trim_end());
    }
    if deny && summary.errors > 0 {
        return Err(PreflightDenied { summary });
    }
    Ok(Some(summary))
}

/// Runs the configured pre-flight analysis, printing findings to
/// stderr.
///
/// # Panics
///
/// Panics under [`PreflightPolicy::Deny`] when the analysis reports
/// errors — after every finding has been printed.
pub fn preflight(cfg: &RunConfig) -> Option<PreflightSummary> {
    match try_preflight(cfg) {
        Ok(summary) => summary,
        Err(denied) => panic!("{denied}"),
    }
}

/// Runs one full measurement.
///
/// # Panics
///
/// Panics if the machine configuration cannot host the application
/// (fewer nodes than `servants + 1`), is invalid, or a
/// [`PreflightPolicy::Deny`] analysis reports errors.
///
/// # Examples
///
/// ```
/// use des::time::SimTime;
/// use raysim::config::{AppConfig, SceneKind, Version};
/// use raysim::run::{run, RunConfig};
///
/// let mut app = AppConfig::version(Version::V4);
/// app.servants = 3;
/// app.scene = SceneKind::Quickstart;
/// app.width = 8;
/// app.height = 8;
/// let mut cfg = RunConfig::new(app);
/// cfg.horizon = SimTime::from_secs(600);
/// let result = run(cfg);
/// assert!(result.completed());
/// assert!(result.image.mean_luminance() > 0.0);
/// ```
pub fn run(cfg: RunConfig) -> RunResult {
    preflight(&cfg);
    cfg.app
        .validate()
        .expect("invalid application configuration");
    assert!(
        cfg.machine.total_nodes() as u32 > cfg.app.servants as u32,
        "machine has {} nodes but the application needs {}",
        cfg.machine.total_nodes(),
        cfg.app.servants + 1
    );

    let mut machine =
        Machine::new(cfg.machine.clone(), cfg.seed).expect("invalid machine configuration");

    let app = Rc::new(cfg.app.clone());
    let ctx = RenderContext::new(&app);
    let stats = Rc::new(RefCell::new(AppStats::default()));
    let fb = Rc::new(RefCell::new(Framebuffer::new(app.width, app.height)));

    let master = Master::new(app.clone(), ctx, stats.clone(), fb.clone());
    machine.add_process(NodeId::new(0), master);
    let outcome = machine.run(cfg.horizon);

    // Probe the displays and run the monitor. The signal log is already
    // time-sorted (per channel, because globally), so the sample stream
    // flows through the monitor in one pass — no materialized sample
    // vector, no per-channel partition copies.
    let channels = machine.topology().total_nodes() as usize;
    let monitor = Zm4::new(cfg.zm4.clone(), channels, cfg.seed);
    let measurement =
        monitor.observe_iter(
            machine
                .signals()
                .display_writes()
                .iter()
                .map(|w| ProbeSample {
                    time: w.time,
                    channel: w.node.index() as usize,
                    pattern: w.pattern,
                }),
        );
    let trace = to_simple_trace(&measurement);

    let image = Rc::try_unwrap(fb)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone());
    let app_stats = *stats.borrow();
    let intrusion = *machine.intrusion();

    RunResult {
        outcome,
        measurement,
        trace,
        image,
        app_stats,
        machine,
        intrusion,
    }
}
