//! Microbenchmarks of the hybrid-monitoring protocol: encoding 48-bit
//! events into seven-segment pattern sequences and decoding them back.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use suprenum_monitor::hybridmon::{decode::Decoder, encode::encode, MonEvent};

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encoding");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_event", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(encode(MonEvent::new(i as u16, i)))
        });
    });
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decoding");
    // A stream of 1000 events (32 patterns each).
    let patterns: Vec<_> = (0..1000u32)
        .flat_map(|i| encode(MonEvent::new(i as u16, i)))
        .collect();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("decode_1000_events", |b| {
        b.iter(|| {
            let mut d = Decoder::new();
            let mut n = 0usize;
            for &p in &patterns {
                if d.feed(p).is_some() {
                    n += 1;
                }
            }
            assert_eq!(black_box(n), 1000);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
