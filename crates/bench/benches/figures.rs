//! Whole-pipeline benchmarks: quick-scale versions of the paper's
//! measurement runs, timing the complete simulate-monitor-evaluate
//! pipeline. (Full-scale figure regeneration lives in the `bench`
//! crate's binaries, e.g. `cargo run --release -p bench --bin
//! fig10_versions`.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use suprenum_monitor::apps::jacobi::{run_jacobi, JacobiConfig};
use suprenum_monitor::experiments::{
    clock_sync_ablation, fig7_mailbox_gantt, mailbox_anatomy, Scale,
};

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiment_pipelines");
    g.sample_size(10);
    g.bench_function("fig7_two_processor_quick", |b| {
        b.iter(|| black_box(fig7_mailbox_gantt(1992, Scale::Quick)));
    });
    g.bench_function("mailbox_anatomy", |b| {
        b.iter(|| black_box(mailbox_anatomy(7)));
    });
    g.bench_function("clock_sync_ablation", |b| {
        b.iter(|| black_box(clock_sync_ablation(7)));
    });
    g.bench_function("jacobi_6_workers", |b| {
        b.iter(|| {
            let cfg = JacobiConfig {
                workers: 6,
                iterations: 12,
                ..JacobiConfig::default()
            };
            black_box(run_jacobi(cfg, 7).max_error)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
