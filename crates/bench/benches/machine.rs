//! Machine-kernel benchmarks: simulated-event throughput of the
//! scheduler and messaging paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use suprenum_monitor::des::time::{SimDuration, SimTime};
use suprenum_monitor::suprenum::{
    Action, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId, Resume, RunEnd,
};

/// Ping-pongs `rounds` messages between two nodes with the given
/// mechanism, then exits.
struct Ping {
    rounds: u32,
    done: u32,
    mailbox: bool,
    peer: Option<ProcessId>,
    awaiting_reply: bool,
}

impl Process for Ping {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        if let Resume::Spawned(pid) = &why {
            self.peer = Some(*pid);
        }
        let Some(peer) = self.peer else {
            return Action::Spawn {
                node: NodeId::new(1),
                body: Box::new(Pong {
                    mailbox: self.mailbox,
                }),
            };
        };
        if self.awaiting_reply {
            self.awaiting_reply = false;
            self.done += 1;
            if self.done >= self.rounds {
                return Action::Exit;
            }
        }
        match why {
            Resume::Sent => {
                self.awaiting_reply = true;
                if self.mailbox {
                    Action::MailboxRecv
                } else {
                    Action::Recv
                }
            }
            _ => {
                let msg = Message::new(ctx.pid, 64, self.done);
                if self.mailbox {
                    Action::MailboxSend { to: peer, msg }
                } else {
                    Action::SendSync { to: peer, msg }
                }
            }
        }
    }
}

struct Pong {
    mailbox: bool,
}

impl Process for Pong {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        match why {
            Resume::Msg(m) | Resume::MailboxMsg(m) => {
                let reply = Message::new(ctx.pid, 64, ());
                if self.mailbox {
                    Action::MailboxSend {
                        to: m.src(),
                        msg: reply,
                    }
                } else {
                    Action::SendSync {
                        to: m.src(),
                        msg: reply,
                    }
                }
            }
            _ => {
                if self.mailbox {
                    Action::MailboxRecv
                } else {
                    Action::Recv
                }
            }
        }
    }
}

fn run_pingpong(mailbox: bool, rounds: u32) {
    let mut m = Machine::new(MachineConfig::single_cluster(2), 1).unwrap();
    m.add_process(
        NodeId::new(0),
        Box::new(Ping {
            rounds,
            done: 0,
            mailbox,
            peer: None,
            awaiting_reply: false,
        }),
    );
    let out = m.run(SimTime::from_secs(3_600));
    assert_eq!(out.reason, RunEnd::Completed);
}

/// A chain of compute/yield cycles stressing the scheduler.
struct Spinner {
    iters: u32,
}

impl Process for Spinner {
    fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
        if self.iters == 0 {
            return Action::Exit;
        }
        self.iters -= 1;
        if self.iters.is_multiple_of(2) {
            Action::Compute(SimDuration::from_micros(50))
        } else {
            Action::Yield
        }
    }
}

fn bench_machine(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_kernel");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("mailbox_pingpong_1000", |b| {
        b.iter(|| {
            run_pingpong(true, 1_000);
            black_box(());
        });
    });
    g.bench_function("sync_pingpong_1000", |b| {
        b.iter(|| {
            run_pingpong(false, 1_000);
            black_box(());
        });
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_compute_yield_10000", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::single_cluster(1), 1).unwrap();
            m.add_process(NodeId::new(0), Box::new(Spinner { iters: 10_000 }));
            assert_eq!(m.run(SimTime::from_secs(3_600)).reason, RunEnd::Completed);
            black_box(m.stats())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
