//! Event-recorder benchmarks: FIFO ingest under different load shapes.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use suprenum_monitor::des::clock::ClockModel;
use suprenum_monitor::des::time::{SimDuration, SimTime};
use suprenum_monitor::hybridmon::MonEvent;
use suprenum_monitor::zm4::{DetectedEvent, EventRecorder};

fn events(count: u64, period_ns: u64) -> Vec<DetectedEvent> {
    (0..count)
        .map(|k| DetectedEvent {
            time: SimTime::from_nanos(1_000 + k * period_ns),
            channel: (k % 4) as usize,
            event: MonEvent::new(k as u16, k as u32),
        })
        .collect()
}

fn bench_recorder(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_recorder");
    for &(label, period) in &[
        ("sustained_9k_per_s", 111_111u64),
        ("burst_1M_per_s", 1_000),
        ("burst_10M_per_s", 100),
    ] {
        let evs = events(10_000, period);
        g.throughput(Throughput::Elements(evs.len() as u64));
        g.bench_function(label, |b| {
            b.iter(|| {
                let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
                let mut rec = EventRecorder::new(clock, 32 * 1024, SimDuration::from_micros(100));
                for &ev in &evs {
                    rec.record(ev);
                }
                black_box(rec.finish())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_recorder);
criterion_main!(benches);
