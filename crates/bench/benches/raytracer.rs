//! Ray-tracer benchmarks: scene complexity and the paper's future-work
//! accelerations (BVH over parallelepipeds, vectorized intersection).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use suprenum_monitor::raytracer::{
    scenes, Accel, Camera, Scene, TraceConfig, Tracer, VectorMode, WorkCounters,
};

fn render_block(scene: &Scene, camera: &Camera, cfg: TraceConfig) -> WorkCounters {
    let tracer = Tracer::new(scene, cfg);
    let mut work = WorkCounters::new();
    for py in 0..24 {
        for px in 0..24 {
            let (_, w) = tracer.render_pixel(camera, px, py, 24, 24, 1);
            work += w;
        }
    }
    work
}

fn bench_scenes(c: &mut Criterion) {
    let mut g = c.benchmark_group("render_24x24");
    g.throughput(Throughput::Elements(24 * 24));
    let (moderate, m_cam) = scenes::moderate_scene();
    let (fractal, f_cam) = scenes::fractal_pyramid(3);
    g.bench_function("moderate_25_primitives", |b| {
        b.iter(|| black_box(render_block(&moderate, &m_cam, TraceConfig::default())));
    });
    g.bench_function("fractal_257_primitives", |b| {
        b.iter(|| black_box(render_block(&fractal, &f_cam, TraceConfig::default())));
    });
    g.finish();
}

fn bench_accelerations(c: &mut Criterion) {
    let mut g = c.benchmark_group("acceleration_fractal");
    let (fractal, f_cam) = scenes::fractal_pyramid(3);
    for (label, accel, vector) in [
        ("brute_scalar", Accel::BruteForce, VectorMode::Scalar),
        (
            "brute_vectorized",
            Accel::BruteForce,
            VectorMode::Vectorized,
        ),
        ("bvh_scalar", Accel::Bvh, VectorMode::Scalar),
    ] {
        let cfg = TraceConfig {
            accel,
            vector_mode: vector,
            ..TraceConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(render_block(&fractal, &f_cam, cfg)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scenes, bench_accelerations);
criterion_main!(benches);
