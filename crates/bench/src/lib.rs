//! Benchmark crate (see benches/ and src/bin/).
