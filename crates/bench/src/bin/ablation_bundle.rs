//! Ablation: ray-bundle size sweep on the version-4 program — why the
//! paper moved from single-ray jobs to bundles of 50 and then 100.
//!
//! Runs through the sweep harness and exits nonzero if any run is
//! truncated.

use std::process::ExitCode;

use suprenum_monitor::experiments::{default_workers, run_sweep, sweeps, Scale};

fn main() -> ExitCode {
    let sweep = sweeps::bundle(Scale::Paper, 1992);
    let report = run_sweep(&sweep, default_workers());

    println!(
        "{:>12} {:>8} {:>12} {:>14}",
        "bundle", "jobs", "utilization", "simulated end"
    );
    for r in &report.records {
        println!(
            "{:>12} {:>8} {:>11}% {:>13.1}s",
            r.label,
            r.work_units,
            r.utilization_percent
                .map_or_else(|| "-".to_owned(), |u| format!("{u:.1}")),
            r.sim_end_ns as f64 / 1e9,
        );
    }
    println!("\nlarger bundles amortize per-message master overhead until tail imbalance bites.");

    if let Err(e) = report.write_artifact(std::path::Path::new("artifacts/bundle.json")) {
        eprintln!("ablation_bundle: cannot write artifact: {e}");
    }
    for r in report.truncated_runs() {
        eprintln!(
            "ablation_bundle: run '{}' truncated ({}) — ablation invalid",
            r.label, r.run_end
        );
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
