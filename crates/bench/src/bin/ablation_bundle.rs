//! Ablation: ray-bundle size sweep on the version-4 program — why the
//! paper moved from single-ray jobs to bundles of 50 and then 100.

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::servant_utilization;
use suprenum_monitor::raysim::config::{AppConfig, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};

fn main() {
    println!(
        "{:>8} {:>8} {:>12} {:>14}",
        "bundle", "jobs", "utilization", "simulated end"
    );
    for bundle in [1u32, 5, 10, 25, 50, 100, 200] {
        let mut app = AppConfig::version(Version::V4);
        app.width = 96;
        app.height = 96;
        app.bundle_size = bundle;
        app.pixel_queue_capacity = 16_384;
        app.write_chunk = bundle.max(4);
        let servants = app.servants as u32;
        let mut cfg = RunConfig::new(app);
        cfg.horizon = SimTime::from_secs(36_000);
        let r = run(cfg);
        assert!(r.completed());
        let u = servant_utilization(&r.trace, servants);
        println!(
            "{:>8} {:>8} {:>11.1}% {:>14}",
            bundle,
            r.app_stats.jobs_sent,
            u.mean_percent(),
            r.outcome.end.to_string()
        );
    }
    println!("\nlarger bundles amortize per-message master overhead until tail imbalance bites.");
}
