//! Ablation: the paper's future work — hierarchical bounding volumes
//! (parallelepipeds) and vectorized plane intersections — measured as
//! simulated MC68020 time per ray on both scenes.

use suprenum_monitor::raytracer::{
    scenes, Accel, CostModel, TraceConfig, Tracer, VectorMode, WorkCounters,
};

fn measure(
    scene_name: &str,
    scene: &suprenum_monitor::raytracer::Scene,
    camera: &suprenum_monitor::raytracer::Camera,
) {
    let cost = CostModel::mc68020();
    println!("{scene_name}:");
    for (label, accel, vector) in [
        (
            "brute force, scalar FPU   ",
            Accel::BruteForce,
            VectorMode::Scalar,
        ),
        (
            "brute force, VFPU batches ",
            Accel::BruteForce,
            VectorMode::Vectorized,
        ),
        ("BVH, scalar FPU           ", Accel::Bvh, VectorMode::Scalar),
        (
            "BVH, VFPU batches         ",
            Accel::Bvh,
            VectorMode::Vectorized,
        ),
    ] {
        let cfg = TraceConfig {
            accel,
            vector_mode: vector,
            ..TraceConfig::default()
        };
        let tracer = Tracer::new(scene, cfg);
        let mut work = WorkCounters::new();
        let n = 32u32;
        for py in 0..n {
            for px in 0..n {
                work += tracer.render_pixel(camera, px, py, n, n, 1).1;
            }
        }
        let total = cost.simulated_time(&work);
        println!(
            "  {label} {:>10} per ray ({} tests, {} chunks, {} BVH visits)",
            (total / (n * n) as u64).to_string(),
            work.scalar_tests,
            work.vector_chunks,
            work.bvh_visits
        );
    }
}

fn main() {
    let (moderate, m_cam) = scenes::moderate_scene();
    let (fractal, f_cam) = scenes::fractal_pyramid(3);
    measure("moderate scene (25 primitives)", &moderate, &m_cam);
    measure("fractal pyramid (257 primitives)", &fractal, &f_cam);
    println!("\nThe BVH pays off dramatically on the complex scene — the speedup the");
    println!("paper anticipated from its hierarchical bounding volume scheme.");
}
