//! Static pre-flight analysis of the paper's four program versions —
//! what the analyzer can say about each measurement *before* it runs:
//! version 1's pseudo-synchronous mailbox coupling, version 3's
//! undersized pixel queue, and the worst-case event-rate headroom of
//! every ZM4 recorder.

use suprenum_monitor::analyzer::{analyze_version, predict};
use suprenum_monitor::raysim::config::{AppConfig, Version};
use suprenum_monitor::raysim::run::RunConfig;

fn main() {
    for version in Version::ALL {
        let report = analyze_version(version);
        println!("== {version} ==");
        print!("{}", report.render());

        let cfg = RunConfig::new(AppConfig::version(version));
        let prediction = predict(&cfg.app, &cfg.machine, &cfg.zm4);
        println!(
            "{:>10} {:>16} {:>12} {:>12}",
            "recorder", "channels", "arrival/s", "drain/s"
        );
        for rec in &prediction.recorders {
            println!(
                "{:>10} {:>16} {:>12.0} {:>12.0}",
                rec.recorder,
                format!(
                    "{}..{}",
                    rec.channels.first().copied().unwrap_or(0),
                    rec.channels.last().copied().unwrap_or(0)
                ),
                rec.arrival_hz,
                rec.drain_hz,
            );
        }
        println!();
    }
}
