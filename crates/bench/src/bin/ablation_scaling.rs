//! Ablation: processor-count scaling. The paper measured 2 and 16
//! processors; here the same version-4 program runs on 2..64 (the larger
//! machines span multiple clusters over the SUPRENUM-bus torus).
//!
//! The master is a centralized administrator, so utilization collapses
//! once its per-ray administration saturates — the paper's "hot-spot for
//! communication" made quantitative.

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::servant_utilization;
use suprenum_monitor::raysim::config::{AppConfig, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};

fn main() {
    println!(
        "{:>11} {:>9} {:>12} {:>10} {:>14}",
        "processors", "clusters", "utilization", "speedup", "simulated end"
    );
    let mut t1: Option<f64> = None;
    for servants in [1u16, 3, 7, 15, 31, 63] {
        let mut app = AppConfig::version(Version::V4);
        app.servants = servants;
        app.width = 96;
        app.height = 96;
        app.bundle_size = 32;
        app.write_chunk = 64;
        let mut cfg = RunConfig::new(app);
        cfg.horizon = SimTime::from_secs(360_000);
        let clusters = cfg.machine.clusters;
        let r = run(cfg);
        r.ensure_completed()
            .unwrap_or_else(|e| panic!("{servants} servants: {e}"));
        let u = servant_utilization(&r.trace, servants as u32);
        let end = r.outcome.end.as_secs_f64();
        let t_one = *t1.get_or_insert(end);
        println!(
            "{:>11} {:>9} {:>11.1}% {:>9.2}x {:>13.1}s",
            servants + 1,
            clusters,
            u.mean_percent(),
            t_one / end,
            end
        );
    }
    println!("\nspeedup saturates where the master's per-ray administration becomes the");
    println!("bottleneck — adding processors beyond that only lowers utilization.");
}
