//! E4 — the global-clock ablation: the same measurement evaluated with
//! MTG-synchronized and free-running recorder clocks.

use suprenum_monitor::experiments::clock_sync_ablation;

fn main() {
    let (sync, free) = clock_sync_ablation(1992);
    println!(
        "{:<26} {:>8} {:>18} {:>18} {:>14}",
        "recorder clocks", "events", "merge inversions", "causality errors", "max ts error"
    );
    for r in [&sync, &free] {
        println!(
            "{:<26} {:>8} {:>18} {:>18} {:>11} us",
            if r.mtg_synchronized {
                "MTG (100ns, global)"
            } else {
                "free-running"
            },
            r.events,
            r.merge_violations,
            r.causality_violations,
            r.max_timestamp_error_ns as f64 / 1e3
        );
    }
}
