//! F10 — regenerate Figure 10: the servant-utilization ladder across
//! program versions 1-4 (paper: 15% / 29% / 46% / 60%).
//!
//! Runs through the sweep harness (the four versions execute in
//! parallel) and exits nonzero if any run is truncated — statistics
//! from an interrupted run must never be mistaken for the figure.

use std::process::ExitCode;

use suprenum_monitor::experiments::{default_workers, run_sweep, sweeps, Scale};

fn main() -> ExitCode {
    let sweep = sweeps::fig10(Scale::Paper, 1992);
    let report = run_sweep(&sweep, default_workers());

    println!("Figure 10 — improvement of servant utilization:");
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>10}",
        "version", "measured", "steady", "paper", "end"
    );
    for r in &report.records {
        let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |p| format!("{p:.1}%"));
        println!(
            "{:<10} {:>9} {:>9} {:>6.0}% {:>9.1}s",
            r.label,
            fmt(r.utilization_percent),
            fmt(r.steady_percent),
            r.paper_percent.unwrap_or(0.0),
            r.sim_end_ns as f64 / 1e9,
        );
    }
    for r in &report.records {
        let measured = r.utilization_percent.unwrap_or(0.0);
        let bars = (measured / 2.0).round() as usize;
        println!("{} |{:<50}| {:.0}%", r.label, "#".repeat(bars), measured);
    }

    if let Err(e) = report.write_artifact(std::path::Path::new("artifacts/fig10.json")) {
        eprintln!("fig10_versions: cannot write artifact: {e}");
    }
    for r in report.truncated_runs() {
        eprintln!(
            "fig10_versions: run '{}' truncated ({}) — figure invalid",
            r.label, r.run_end
        );
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
