//! F10 — regenerate Figure 10: the servant-utilization ladder across
//! program versions 1-4 (paper: 15% / 29% / 46% / 60%).

use suprenum_monitor::experiments::{fig10_versions, Scale};

fn main() {
    let rows = fig10_versions(1992, Scale::Paper);
    println!("Figure 10 — improvement of servant utilization:");
    println!(
        "{:<40} {:>9} {:>9} {:>7}",
        "version", "measured", "steady", "paper"
    );
    for r in &rows {
        println!(
            "{:<40} {:>8.1}% {:>8.1}% {:>6.0}%",
            r.version.to_string(),
            r.measured_percent,
            r.steady_percent,
            r.paper_percent
        );
    }
    for r in &rows {
        let bars = (r.measured_percent / 2.0).round() as usize;
        println!(
            "V{} |{:<50}| {:.0}%",
            r.version as u8 + 1,
            "#".repeat(bars),
            r.measured_percent
        );
    }
}
