//! E3 — §3.1 event-recorder behaviour: sustained drain at ~10k events/s,
//! burst absorption up to the 32K FIFO, loss beyond.

use suprenum_monitor::experiments::fifo_stress;

fn main() {
    println!(
        "{:<26} {:>12} {:>9} {:>9} {:>7} {:>10}",
        "scenario", "rate (ev/s)", "offered", "recorded", "lost", "max FIFO"
    );
    for r in fifo_stress() {
        println!(
            "{:<26} {:>12} {:>9} {:>9} {:>7} {:>10}",
            r.label, r.rate_per_sec, r.offered, r.recorded, r.lost, r.max_fifo
        );
    }
}
