//! E2 — §3.2 intrusion comparison: hybrid vs terminal vs software
//! monitoring vs no monitoring.

use suprenum_monitor::experiments::intrusion_comparison;

fn main() {
    let rows = intrusion_comparison(1992);
    println!(
        "{:<10} {:>8} {:>16} {:>12} {:>14}",
        "mode", "events", "mean per event", "intrusion", "simulated end"
    );
    for r in &rows {
        println!(
            "{:<10} {:>8} {:>16} {:>11.2}% {:>14}",
            r.mode.to_string(),
            r.events,
            r.mean_per_event.to_string(),
            r.intrusion_ratio * 100.0,
            r.end.to_string(),
        );
    }
    println!("\npaper anchors: hybrid_mon < 120 us per event; terminal > 2.4 ms (20x+ more).");
}
