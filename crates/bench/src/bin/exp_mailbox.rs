//! E5 — the mailbox microbenchmark: SUPRENUM's asynchronous mailbox
//! send behaves synchronously when the receiver is busy.

use suprenum_monitor::experiments::mailbox_anatomy;

fn main() {
    let r = mailbox_anatomy(1992);
    println!(
        "mailbox send blocking (receiver work phase {}):",
        r.receiver_work
    );
    println!("  receiver busy: {}", r.busy_receiver_block);
    println!("  receiver idle: {}", r.idle_receiver_block);
    println!(
        "  ratio: {}x — the sender waits until the receiver relinquishes the CPU",
        r.busy_receiver_block.as_nanos() / r.idle_receiver_block.as_nanos().max(1)
    );
}
