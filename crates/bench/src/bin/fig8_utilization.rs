//! F8 — regenerate Figure 8: servant utilization under mailbox
//! communication on 16 processors (paper: about 15%).

use suprenum_monitor::experiments::{fig8_mailbox_utilization, Scale};

fn main() {
    let r = fig8_mailbox_utilization(1992, Scale::Paper);
    println!("Figure 8 — mailbox communication, 16 processors:");
    println!(
        "  servant utilization: measured {:.1}% (steady {:.1}%), paper ~{:.0}%",
        r.measured_percent, r.steady_percent, r.paper_percent
    );
    println!("  jobs: {}  simulated end: {}", r.jobs, r.end);
}
