//! Ablation: static vs dynamic ray partitioning (paper §4.1).
//!
//! "The performance of static ray partitioning is often quite poor
//! because the computation time for a single ray varies significantly…
//! a load balancing problem which can be at least partly solved by
//! assigning discontinuous subsets of rays."

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::{servant_tracks, servant_utilization, work_phase};
use suprenum_monitor::raysim::config::{AppConfig, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};
use suprenum_monitor::raysim::static_partition::{run_static, StaticScheme};
use suprenum_monitor::simple::Trace;

fn main() {
    let horizon = SimTime::from_secs(36_000);
    let base = || {
        let mut app = AppConfig::version(Version::V4);
        app.width = 96;
        app.height = 96;
        app
    };
    println!(
        "{:<22} {:>12} {:>9} {:>22} {:>14}",
        "scheme", "utilization", "balance", "work min/max (s)", "simulated end"
    );

    // Balance = mean/max of per-servant Work time: 1.0 is a perfectly
    // even load; low values mean idle servants waiting for stragglers.
    let report = |label: String, trace: &Trace, servants: u32, end: SimTime| {
        let (_, to) = work_phase(trace).unwrap();
        let tracks = servant_tracks(trace, servants, to);
        let works: Vec<f64> = tracks
            .iter()
            .map(|t| t.time_in_state("Work") as f64 / 1e9)
            .collect();
        let max = works.iter().cloned().fold(0.0, f64::max);
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        let u = servant_utilization(trace, servants);
        println!(
            "{:<22} {:>11.1}% {:>9.2} {:>11.1} /{:>8.1} {:>14}",
            label,
            u.mean_percent(),
            mean / max,
            min,
            max,
            end.to_string()
        );
    };

    for scheme in [StaticScheme::Contiguous, StaticScheme::Interleaved] {
        let app = base();
        let servants = app.servants as u32;
        let r = run_static(app, scheme, 1992, horizon);
        r.ensure_completed()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        report(scheme.to_string(), &r.trace, servants, r.outcome.end);
    }

    let app = base();
    let servants = app.servants as u32;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = horizon;
    let r = run(cfg);
    r.ensure_completed()
        .unwrap_or_else(|e| panic!("dynamic: {e}"));
    report(
        "dynamic (version 4)".into(),
        &r.trace,
        servants,
        r.outcome.end,
    );
    println!("\ncontiguous bands idle on cheap sky rows while the center band grinds;");
    println!("interleaving spreads the variance; dynamic partitioning adapts to it.");
}
