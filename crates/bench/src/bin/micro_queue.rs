//! Hot-path microbenchmarks: event queue, trace codec, recorder ingest.
//!
//! Run with `cargo run --release -p bench --bin micro_queue`. Covers the
//! three hot paths the calendar-queue/zero-alloc overhaul touched:
//!
//! * `EventQueue` (calendar) vs `queue::reference::ReferenceQueue`
//!   (binary heap) under the classic hold model, equal-timestamp bursts,
//!   and horizon-spanning delays;
//! * hybridmon encode → decode round trips;
//! * recorder ingest into a `Vec` sink vs the incremental `DigestSink`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use suprenum_monitor::des::clock::ClockModel;
use suprenum_monitor::des::queue::reference::ReferenceQueue;
use suprenum_monitor::des::queue::EventQueue;
use suprenum_monitor::des::time::{SimDuration, SimTime};
use suprenum_monitor::hybridmon::encode::encode;
use suprenum_monitor::hybridmon::{Decoder, MonEvent};
use suprenum_monitor::zm4::{DetectedEvent, DigestSink, EventRecorder};

/// Deterministic xorshift so both queue implementations see the same
/// delay sequence (no external RNG dependency in a bench bin).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The hold model: seed the queue with `population` events, then
/// repeatedly pop the minimum and push a successor a pseudo-random
/// `delay` later. Steady-state churn — the access pattern a simulation
/// kernel produces.
fn hold<Q>(
    push: impl Fn(&mut Q, SimTime, u64),
    pop: impl Fn(&mut Q) -> Option<(SimTime, u64)>,
    queue: &mut Q,
    population: u64,
    holds: u64,
    max_delay_ns: u64,
) -> u64 {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for k in 0..population {
        push(queue, SimTime::from_nanos(rng.next() % max_delay_ns), k);
    }
    let mut acc = 0u64;
    for k in 0..holds {
        let (t, id) = pop(queue).expect("population never drains");
        acc = acc.wrapping_add(t.as_nanos()).wrapping_add(id);
        push(
            queue,
            t + SimDuration::from_nanos(rng.next() % max_delay_ns),
            k,
        );
    }
    acc
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    const HOLDS: u64 = 20_000;
    g.throughput(Throughput::Elements(HOLDS));
    // Delay shapes: short (fits the calendar window), burst (all equal
    // timestamps — FIFO tie-break stress), spanning (delays far beyond
    // the calendar window, forcing the far heap + re-anchor path).
    for &(label, max_delay) in &[
        ("short_delays", 5_000u64),
        ("equal_time_bursts", 1),
        ("horizon_spanning", 40_000_000_000),
    ] {
        g.bench_function(&format!("calendar/{label}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(1_024);
                hold(
                    |q: &mut EventQueue<u64>, t, e| q.push(t, e),
                    EventQueue::pop,
                    &mut q,
                    1_024,
                    HOLDS,
                    max_delay.max(1),
                )
            });
        });
        g.bench_function(&format!("reference_heap/{label}"), |b| {
            b.iter(|| {
                let mut q = ReferenceQueue::with_capacity(1_024);
                hold(
                    |q: &mut ReferenceQueue<u64>, t, e| q.push(t, e),
                    ReferenceQueue::pop,
                    &mut q,
                    1_024,
                    HOLDS,
                    max_delay.max(1),
                )
            });
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    const EVENTS: u64 = 2_000;
    g.throughput(Throughput::Elements(EVENTS));
    let events: Vec<MonEvent> = (0..EVENTS)
        .map(|k| MonEvent::new((k % 65_536) as u16, k as u32))
        .collect();
    g.bench_function("encode_decode_roundtrip", |b| {
        b.iter(|| {
            let mut decoder = Decoder::new();
            let mut decoded = 0u64;
            for &ev in &events {
                for p in encode(ev) {
                    if let Some(out) = decoder.feed(p) {
                        debug_assert_eq!(out, ev);
                        decoded += 1;
                    }
                }
            }
            black_box(decoded)
        });
    });
    g.finish();
}

fn bench_recorder_sinks(c: &mut Criterion) {
    let mut g = c.benchmark_group("recorder_ingest");
    const EVENTS: u64 = 10_000;
    g.throughput(Throughput::Elements(EVENTS));
    let events: Vec<DetectedEvent> = (0..EVENTS)
        .map(|k| DetectedEvent {
            time: SimTime::from_nanos(1_000 + k * 150_000),
            channel: (k % 4) as usize,
            event: MonEvent::new((k % 65_536) as u16, k as u32),
        })
        .collect();
    g.bench_function("vec_sink", |b| {
        b.iter(|| {
            let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
            let mut rec = EventRecorder::new(clock, 32 * 1024, SimDuration::from_micros(100));
            for &ev in &events {
                rec.record(ev);
            }
            black_box(rec.finish())
        });
    });
    g.bench_function("digest_sink", |b| {
        b.iter(|| {
            let clock = ClockModel::synchronized(SimDuration::from_nanos(100));
            let mut rec = EventRecorder::with_sink(
                clock,
                32 * 1024,
                SimDuration::from_micros(100),
                DigestSink::new(),
            );
            for &ev in &events {
                rec.record(ev);
            }
            black_box(rec.finish())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_queue, bench_codec, bench_recorder_sinks);
criterion_main!(benches);
