//! E6 — the paper's future work, implemented: kernel-level
//! instrumentation of the node scheduler and mailbox service.

use suprenum_monitor::experiments::os_instrumentation;

fn main() {
    let r = os_instrumentation(1992);
    println!("kernel scheduler events recorded: {}", r.kernel_events);
    println!("\nper-node CPU busy fraction (ray-tracing phase):");
    for (name, busy) in &r.node_cpu_busy {
        println!("  {name:<12} {:5.1}%", busy * 100.0);
    }
    println!(
        "\nmaster-node mailbox-service share: {:.2}% — internode communication made visible",
        r.master_node_mailbox_fraction * 100.0
    );
    println!("\n{}", r.gantt_text);
}
