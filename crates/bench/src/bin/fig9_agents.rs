//! F9 — regenerate Figure 9: communication agents (version 2). Prints
//! the Gantt chart with the agent band and writes `fig9.svg`.

use suprenum_monitor::experiments::{fig9_agents, Scale};

fn main() {
    let r = fig9_agents(1992, Scale::Paper);
    println!("{}", r.gantt_text);
    println!(
        "servant utilization: measured {:.1}% (paper ~{:.0}%)",
        r.utilization.measured_percent, r.utilization.paper_percent
    );
    println!("agent pool size: {} (paper: 5)", r.agent_pool_size);
    println!(
        "agent state durations: Freed {:.0} us (\"extremely short\"), Forward {:.1} ms",
        r.mean_freed_us, r.mean_forward_ms
    );
    std::fs::write("fig9.svg", r.gantt_svg).expect("write fig9.svg");
    println!("wrote fig9.svg");
}
