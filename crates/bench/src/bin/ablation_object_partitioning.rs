//! Ablation: object partitioning vs ray partitioning (paper §4.1).
//!
//! Object partitioning stores only 1/N of the scene per processor but
//! broadcasts every ray generation to all processors and reduces their
//! answers at the master. Ray partitioning replicates the scene and
//! communicates only jobs/results. The paper chose ray partitioning;
//! this measures what that choice bought.

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::servant_utilization;
use suprenum_monitor::raysim::config::{AppConfig, SceneKind, Version};
use suprenum_monitor::raysim::objpart::{run_object_partitioned, ObjPartConfig};
use suprenum_monitor::raysim::run::{run, RunConfig};

fn main() {
    let horizon = SimTime::from_secs(360_000);
    let base = || {
        let mut app = AppConfig::version(Version::V4);
        app.scene = SceneKind::Moderate;
        app.servants = 15;
        app.width = 48;
        app.height = 48;
        app.bundle_size = 16;
        app.write_chunk = 32;
        app
    };

    println!(
        "{:<20} {:>12} {:>14} {:>14} {:>16} {:>12}",
        "scheme", "utilization", "objects/node", "bytes moved", "simulated end", "msgs"
    );

    // Object partitioning.
    let obj = run_object_partitioned(ObjPartConfig::new(base()), 1992, horizon);
    obj.ensure_completed()
        .unwrap_or_else(|e| panic!("object partitioning: {e}"));
    let u = servant_utilization(&obj.trace, 15);
    let ic = obj.machine.interconnect_stats();
    println!(
        "{:<20} {:>11.1}% {:>14} {:>14} {:>15.1}s {:>12}",
        "object partitioning",
        u.mean_percent(),
        obj.max_objects_per_servant,
        ic.bytes_moved,
        obj.outcome.end.as_secs_f64(),
        ic.intra_cluster_transfers + ic.local_transfers,
    );

    // Ray partitioning (version 4).
    let mut cfg = RunConfig::new(base());
    cfg.horizon = horizon;
    let ray = run(cfg);
    ray.ensure_completed()
        .unwrap_or_else(|e| panic!("ray partitioning: {e}"));
    let u = servant_utilization(&ray.trace, 15);
    let ic = ray.machine.interconnect_stats();
    println!(
        "{:<20} {:>11.1}% {:>14} {:>14} {:>15.1}s {:>12}",
        "ray partitioning",
        u.mean_percent(),
        25, // the full replicated scene
        ic.bytes_moved,
        ray.outcome.end.as_secs_f64(),
        ic.intra_cluster_transfers + ic.local_transfers,
    );
    println!(
        "\nobject partitioning executed {} broadcast rounds; its servants idle at every",
        obj.rounds
    );
    println!("round barrier while the master reduces 15 answer sets per ray generation —");
    println!("the communication/synchronization price of not replicating the scene.");
}
