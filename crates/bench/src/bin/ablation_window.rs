//! Ablation: window-flow-control credit sweep — the paper's scheme
//! "prevents flooding of the servants ... but also ensures that the
//! servants always have enough work".

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::servant_utilization;
use suprenum_monitor::raysim::config::{AppConfig, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};

fn main() {
    println!(
        "{:>8} {:>12} {:>14}",
        "window", "utilization", "simulated end"
    );
    for window in [1u32, 2, 3, 5, 8] {
        let mut app = AppConfig::version(Version::V3);
        app.width = 96;
        app.height = 96;
        app.window = window;
        let servants = app.servants as u32;
        let mut cfg = RunConfig::new(app);
        cfg.horizon = SimTime::from_secs(36_000);
        let r = run(cfg);
        assert!(r.completed());
        let u = servant_utilization(&r.trace, servants);
        println!(
            "{:>8} {:>11.1}% {:>14}",
            window,
            u.mean_percent(),
            r.outcome.end.to_string()
        );
    }
}
