//! Ablation: window-flow-control credit sweep — the paper's scheme
//! "prevents flooding of the servants ... but also ensures that the
//! servants always have enough work".
//!
//! Runs through the sweep harness and exits nonzero if any run is
//! truncated.

use std::process::ExitCode;

use suprenum_monitor::experiments::{default_workers, run_sweep, sweeps, Scale};

fn main() -> ExitCode {
    let sweep = sweeps::window(Scale::Paper, 1992);
    let report = run_sweep(&sweep, default_workers());

    println!(
        "{:>12} {:>12} {:>14}",
        "window", "utilization", "simulated end"
    );
    for r in &report.records {
        println!(
            "{:>12} {:>11}% {:>13.1}s",
            r.label,
            r.utilization_percent
                .map_or_else(|| "-".to_owned(), |u| format!("{u:.1}")),
            r.sim_end_ns as f64 / 1e9,
        );
    }

    if let Err(e) = report.write_artifact(std::path::Path::new("artifacts/window.json")) {
        eprintln!("ablation_window: cannot write artifact: {e}");
    }
    for r in report.truncated_runs() {
        eprintln!(
            "ablation_window: run '{}' truncated ({}) — ablation invalid",
            r.label, r.run_end
        );
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
