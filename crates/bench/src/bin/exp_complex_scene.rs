//! E1 — the complex scene (fractal pyramid, >250 primitives): servant
//! utilization reaches >99% in the steady phase.

use suprenum_monitor::experiments::{complex_scene, Scale};

fn main() {
    let r = complex_scene(1992, Scale::Paper);
    println!("complex scene (fractal pyramid, 257 primitives), version 4, 16 processors:");
    println!(
        "  servant utilization: whole phase {:.1}%, steady phase {:.1}% (paper: over 99%)",
        r.measured_percent, r.steady_percent
    );
    println!("  jobs: {}  simulated end: {}", r.jobs, r.end);
}
