//! F7 — regenerate Figure 7: mailbox communication, ray tracer on two
//! processors. Prints the Gantt chart and writes `fig7.svg`.

use suprenum_monitor::experiments::{fig7_mailbox_gantt, Scale};

fn main() {
    let fig7 = fig7_mailbox_gantt(1992, Scale::Paper);
    println!("{}", fig7.gantt_text);
    println!(
        "servant utilization: {:.1}%",
        fig7.servant_utilization_percent
    );
    println!(
        "median coupling gap (master Send->Wait vs servant Work->Wait): {:.0} us (work {:.1} ms)",
        fig7.median_coupling_gap_us, fig7.mean_work_ms
    );
    std::fs::write("fig7.svg", fig7.gantt_svg).expect("write fig7.svg");
    println!("wrote fig7.svg");
}
