//! Scene description: primitives with materials, plus lights.

use crate::color::Color;
use crate::geometry::Primitive;
use crate::material::{Light, Material};

/// One renderable object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Object {
    /// The shape.
    pub primitive: Primitive,
    /// Its surface material.
    pub material: Material,
}

/// A complete scene.
///
/// # Examples
///
/// ```
/// use raytracer::color::Color;
/// use raytracer::geometry::Sphere;
/// use raytracer::material::{Light, Material};
/// use raytracer::math::Vec3;
/// use raytracer::scene::Scene;
///
/// let mut scene = Scene::new(Color::grey(0.1));
/// scene.add(Sphere::new(Vec3::new(0.0, 0.0, -5.0), 1.0), Material::matte(Color::WHITE));
/// scene.add_light(Light { position: Vec3::new(5.0, 5.0, 0.0), color: Color::WHITE });
/// assert_eq!(scene.primitive_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scene {
    objects: Vec<Object>,
    lights: Vec<Light>,
    background: Color,
    ambient: Color,
}

impl Scene {
    /// Creates an empty scene with the given background colour.
    pub fn new(background: Color) -> Self {
        Scene {
            objects: Vec::new(),
            lights: Vec::new(),
            background,
            ambient: Color::grey(1.0),
        }
    }

    /// Adds a primitive with a material; returns its object index.
    pub fn add(&mut self, primitive: impl Into<Primitive>, material: Material) -> usize {
        self.objects.push(Object {
            primitive: primitive.into(),
            material,
        });
        self.objects.len() - 1
    }

    /// Adds a light source.
    pub fn add_light(&mut self, light: Light) -> &mut Self {
        self.lights.push(light);
        self
    }

    /// The scene's objects.
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// The scene's lights.
    pub fn lights(&self) -> &[Light] {
        &self.lights
    }

    /// Background colour for rays that escape the scene — "a ray which
    /// does not intersect any object of the scene gets assigned the
    /// background colour of the picture without any further processing"
    /// (paper §4.2).
    pub fn background(&self) -> Color {
        self.background
    }

    /// Global ambient light colour.
    pub fn ambient(&self) -> Color {
        self.ambient
    }

    /// Sets the ambient light colour.
    pub fn set_ambient(&mut self, ambient: Color) -> &mut Self {
        self.ambient = ambient;
        self
    }

    /// Number of primitives — the paper's measure of scene complexity
    /// (25 for the moderate scene, >250 for the fractal pyramid).
    pub fn primitive_count(&self) -> usize {
        self.objects.len()
    }

    /// Indices of objects with finite bounds (BVH candidates).
    pub fn bounded_indices(&self) -> Vec<usize> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.primitive.is_unbounded())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of unbounded objects (planes), always tested linearly.
    pub fn unbounded_indices(&self) -> Vec<usize> {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, o)| o.primitive.is_unbounded())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Plane, Sphere};
    use crate::math::Vec3;

    #[test]
    fn partitions_bounded_and_unbounded() {
        let mut s = Scene::new(Color::BLACK);
        s.add(Sphere::new(Vec3::ZERO, 1.0), Material::default());
        s.add(
            Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)),
            Material::default(),
        );
        s.add(
            Sphere::new(Vec3::new(3.0, 0.0, 0.0), 1.0),
            Material::default(),
        );
        assert_eq!(s.bounded_indices(), vec![0, 2]);
        assert_eq!(s.unbounded_indices(), vec![1]);
        assert_eq!(s.primitive_count(), 3);
    }

    #[test]
    fn lights_and_ambient() {
        let mut s = Scene::new(Color::grey(0.2));
        s.add_light(Light {
            position: Vec3::ZERO,
            color: Color::WHITE,
        });
        s.set_ambient(Color::grey(0.3));
        assert_eq!(s.lights().len(), 1);
        assert_eq!(s.ambient(), Color::grey(0.3));
        assert_eq!(s.background(), Color::grey(0.2));
    }
}
