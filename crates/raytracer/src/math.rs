//! Minimal 3-vector math for the ray tracer.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component vector / point.
///
/// # Examples
///
/// ```
/// use raytracer::math::Vec3;
///
/// let v = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(v.length(), 5.0);
/// assert!((v.normalized().length() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all components equal.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (cheaper when comparing distances).
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// The unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len > 0.0, "cannot normalize the zero vector");
        self / len
    }

    /// Component-wise minimum.
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(o.x),
            y: self.y.min(o.y),
            z: self.z.min(o.z),
        }
    }

    /// Component-wise maximum.
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(o.x),
            y: self.y.max(o.y),
            z: self.z.max(o.z),
        }
    }

    /// Reflects this (incident) direction about `normal`.
    pub fn reflect(self, normal: Vec3) -> Vec3 {
        self - normal * (2.0 * self.dot(normal))
    }

    /// Refracts this (unit, incident) direction through a surface with
    /// unit `normal` and relative index of refraction `eta` (n1/n2).
    /// Returns `None` on total internal reflection.
    pub fn refract(self, normal: Vec3, eta: f64) -> Option<Vec3> {
        let cos_i = (-self.dot(normal)).clamp(-1.0, 1.0);
        let sin2_t = eta * eta * (1.0 - cos_i * cos_i);
        if sin2_t > 1.0 {
            return None;
        }
        let cos_t = (1.0 - sin2_t).sqrt();
        Some(self * eta + normal * (eta * cos_i - cos_t))
    }

    /// Largest component index (0, 1, 2) — used by BVH splitting.
    pub fn max_axis(self) -> usize {
        if self.x >= self.y && self.x >= self.z {
            0
        } else if self.y >= self.z {
            1
        } else {
            2
        }
    }

    /// Component by axis index.
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    pub fn axis(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis {axis} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A ray: origin plus unit direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (unit length by convention).
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing the direction.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Ray {
            origin,
            dir: dir.normalized(),
        }
    }

    /// The point at parameter `t`.
    pub fn at(self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Vec3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn reflect_mirrors() {
        let incident = Vec3::new(1.0, -1.0, 0.0).normalized();
        let n = Vec3::new(0.0, 1.0, 0.0);
        let r = incident.reflect(n);
        assert!((r.x - incident.x).abs() < 1e-12);
        assert!((r.y + incident.y).abs() < 1e-12);
    }

    #[test]
    fn refract_straight_through() {
        let incident = Vec3::new(0.0, -1.0, 0.0);
        let n = Vec3::new(0.0, 1.0, 0.0);
        let t = incident.refract(n, 1.0).unwrap();
        assert!((t - incident).length() < 1e-12);
    }

    #[test]
    fn total_internal_reflection() {
        // Grazing incidence from dense to thin medium.
        let incident = Vec3::new(0.99, -0.141, 0.0).normalized();
        let n = Vec3::new(0.0, 1.0, 0.0);
        assert!(incident.refract(n, 1.5).is_none());
    }

    #[test]
    fn axis_helpers() {
        let v = Vec3::new(1.0, 3.0, 2.0);
        assert_eq!(v.max_axis(), 1);
        assert_eq!(v.axis(0), 1.0);
        assert_eq!(v.axis(2), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_axis_panics() {
        Vec3::ZERO.axis(3);
    }

    #[test]
    fn ray_at() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(3.0), Vec3::new(1.0, 3.0, 0.0));
    }

    proptest! {
        #[test]
        fn normalize_gives_unit_length(
            x in -100.0f64..100.0, y in -100.0f64..100.0, z in -100.0f64..100.0
        ) {
            let v = Vec3::new(x, y, z);
            prop_assume!(v.length() > 1e-6);
            prop_assert!((v.normalized().length() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn cross_is_orthogonal(
            ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
            bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
        ) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            prop_assert!(c.dot(a).abs() < 1e-6);
            prop_assert!(c.dot(b).abs() < 1e-6);
        }

        #[test]
        fn reflect_preserves_length(
            x in -10.0f64..10.0, y in -10.0f64..-0.1, z in -10.0f64..10.0
        ) {
            let v = Vec3::new(x, y, z).normalized();
            let r = v.reflect(Vec3::new(0.0, 1.0, 0.0));
            prop_assert!((r.length() - 1.0).abs() < 1e-9);
        }
    }
}
