//! Converting geometric work into simulated MC68020 time.
//!
//! The servant processes in the SUPRENUM simulation do not burn host CPU
//! proportionally to 1990 hardware; instead the tracer counts its
//! elementary operations ([`crate::work::WorkCounters`]) and this model
//! prices them for a 20 MHz MC68020 with MC68882 scalar FPU. The
//! vectorized path prices a whole [`crate::intersect::VECTOR_WIDTH`]-wide
//! batch at a discount, modelling the Weitek VFPU's chained pipelines.
//!
//! Default prices are derived from instruction-count estimates
//! (~50–100 FLOPs per intersection test at ~3 µs per double-precision
//! MC68882 operation) and calibrated so that a moderate-complexity scene
//! costs a few milliseconds per ray — consistent with the cycle times
//! visible in the paper's Figure 7 Gantt chart.

use des::time::SimDuration;

use crate::work::WorkCounters;

/// Prices for elementary tracing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed per-ray overhead (setup, normalization, loop control).
    pub per_ray: SimDuration,
    /// One scalar ray–primitive intersection test.
    pub per_scalar_test: SimDuration,
    /// One vectorized batch of intersection tests (the VFPU advantage:
    /// this is much less than `VECTOR_WIDTH ×` the scalar price).
    pub per_vector_chunk: SimDuration,
    /// One BVH node visit (box slab test + stack work).
    pub per_bvh_visit: SimDuration,
    /// One surface shading evaluation (lighting model).
    pub per_shading: SimDuration,
}

impl CostModel {
    /// The MC68020/MC68882-anchored default model.
    pub fn mc68020() -> Self {
        CostModel {
            per_ray: SimDuration::from_micros(40),
            per_scalar_test: SimDuration::from_micros(200),
            per_vector_chunk: SimDuration::from_micros(150),
            per_bvh_visit: SimDuration::from_micros(45),
            per_shading: SimDuration::from_micros(250),
        }
    }

    /// The simulated CPU time for the counted work.
    ///
    /// # Examples
    ///
    /// ```
    /// use raytracer::cost::CostModel;
    /// use raytracer::work::WorkCounters;
    ///
    /// let model = CostModel::mc68020();
    /// let work = WorkCounters { rays: 1, scalar_tests: 25, shadings: 1, ..WorkCounters::default() };
    /// let t = model.simulated_time(&work);
    /// assert!(t.as_millis_f64() > 1.0, "a 25-primitive brute-force ray costs milliseconds");
    /// ```
    pub fn simulated_time(&self, work: &WorkCounters) -> SimDuration {
        self.per_ray * work.rays
            + self.per_scalar_test * work.scalar_tests
            + self.per_vector_chunk * work.vector_chunks
            + self.per_bvh_visit * work.bvh_visits
            + self.per_shading * work.shadings
    }

    /// The VFPU speedup this model implies for pure intersection work:
    /// `VECTOR_WIDTH` scalar tests vs. one vector chunk.
    pub fn vector_speedup(&self) -> f64 {
        let scalar = self.per_scalar_test.as_nanos() as f64 * crate::intersect::VECTOR_WIDTH as f64;
        scalar / self.per_vector_chunk.as_nanos() as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::mc68020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_is_linear() {
        let m = CostModel::mc68020();
        let one = WorkCounters {
            rays: 1,
            scalar_tests: 10,
            ..WorkCounters::default()
        };
        let two = WorkCounters {
            rays: 2,
            scalar_tests: 20,
            ..WorkCounters::default()
        };
        assert_eq!(m.simulated_time(&one) * 2, m.simulated_time(&two));
        assert_eq!(
            m.simulated_time(&WorkCounters::default()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn vectorized_work_is_cheaper() {
        let m = CostModel::mc68020();
        // 100 primitives: 100 scalar tests vs 25 vector chunks.
        let scalar = WorkCounters {
            scalar_tests: 100,
            ..WorkCounters::default()
        };
        let vector = WorkCounters {
            vector_chunks: 25,
            ..WorkCounters::default()
        };
        assert!(m.simulated_time(&vector) < m.simulated_time(&scalar));
        assert!(m.vector_speedup() > 2.0, "VFPU should give a clear speedup");
    }

    #[test]
    fn moderate_scene_ray_costs_milliseconds() {
        let m = CostModel::mc68020();
        // Typical primary ray in the 25-primitive scene with one shadow
        // ray: ~50 tests + 2 shadings.
        let work = WorkCounters {
            rays: 2,
            scalar_tests: 50,
            shadings: 1,
            shadow_queries: 1,
            ..WorkCounters::default()
        };
        let t = m.simulated_time(&work).as_millis_f64();
        assert!(
            (1.0..40.0).contains(&t),
            "per-ray cost {t} ms out of plausible range"
        );
    }
}
