//! Sub-pixel sampling for the oversampling scheme.
//!
//! "An oversampling scheme, in which more than one ray is computed per
//! pixel in order to reduce aliasing problems, is also organized by the
//! master" (paper §4.2). The offsets are the deterministic centers of an
//! `n × n` stratified grid, so renders stay bit-reproducible.

/// Sub-pixel sample offsets for `n × n` oversampling, each in `[0, 1)²`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use raytracer::sampling::oversample_offsets;
///
/// assert_eq!(oversample_offsets(1), vec![(0.5, 0.5)]);
/// assert_eq!(oversample_offsets(2).len(), 4);
/// ```
pub fn oversample_offsets(n: u32) -> Vec<(f64, f64)> {
    assert!(n > 0, "oversampling factor must be at least 1");
    let step = 1.0 / n as f64;
    let mut out = Vec::with_capacity((n * n) as usize);
    for j in 0..n {
        for i in 0..n {
            out.push((step * (i as f64 + 0.5), step * (j as f64 + 0.5)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_sample_is_center() {
        assert_eq!(oversample_offsets(1), vec![(0.5, 0.5)]);
    }

    #[test]
    fn grid_is_stratified() {
        let offsets = oversample_offsets(3);
        assert_eq!(offsets.len(), 9);
        // One sample in each of the 9 strata.
        for j in 0..3 {
            for i in 0..3 {
                let lo_x = i as f64 / 3.0;
                let lo_y = j as f64 / 3.0;
                assert!(
                    offsets
                        .iter()
                        .any(|&(x, y)| (lo_x..lo_x + 1.0 / 3.0).contains(&x)
                            && (lo_y..lo_y + 1.0 / 3.0).contains(&y)),
                    "stratum ({i},{j}) empty"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_panics() {
        oversample_offsets(0);
    }

    proptest! {
        #[test]
        fn offsets_in_unit_square(n in 1u32..8) {
            for (x, y) in oversample_offsets(n) {
                prop_assert!((0.0..1.0).contains(&x));
                prop_assert!((0.0..1.0).contains(&y));
            }
            prop_assert_eq!(oversample_offsets(n).len(), (n * n) as usize);
        }
    }
}
