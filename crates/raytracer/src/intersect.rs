//! Scene intersection front end: acceleration-structure choice and the
//! scalar vs. vectorized ("VFPU") test paths.
//!
//! The paper's future work includes vectorizing the plane-intersection
//! operations on the node's Weitek vector FPU. [`VectorMode::Vectorized`]
//! models that: primitives are tested in fixed-width batches
//! ([`VECTOR_WIDTH`]), each batch counting as *one* vector chunk in the
//! work counters instead of `VECTOR_WIDTH` scalar tests. The results are
//! bit-identical to the scalar path — only the cost accounting (and the
//! batch-structured code path) differ, which is exactly the ablation the
//! benchmarks measure.

use crate::bvh::Bvh;
use crate::geometry::{Hit, Intersect};
use crate::math::Ray;
use crate::scene::Scene;
use crate::work::WorkCounters;

/// Primitives tested per vector chunk (the WTL2264/2265 pipelines four
/// double-precision operations per chained cycle group).
pub const VECTOR_WIDTH: usize = 4;

/// Which acceleration structure to traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Accel {
    /// Test every primitive (the paper's implemented tracer).
    #[default]
    BruteForce,
    /// Bounding-volume hierarchy (the paper's future work).
    Bvh,
}

/// Scalar FPU or batched vector-unit intersection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorMode {
    /// One test at a time on the MC68882.
    #[default]
    Scalar,
    /// Batches of [`VECTOR_WIDTH`] on the VFPU.
    Vectorized,
}

/// A scene prepared for intersection queries.
///
/// # Examples
///
/// ```
/// use raytracer::intersect::{Accel, SceneIndex, VectorMode};
/// use raytracer::math::{Ray, Vec3};
/// use raytracer::scenes;
/// use raytracer::work::WorkCounters;
///
/// let (scene, _cam) = scenes::moderate_scene();
/// let index = SceneIndex::build(&scene, Accel::Bvh, VectorMode::Scalar);
/// let ray = Ray::new(Vec3::new(0.0, 2.0, 14.0), Vec3::new(0.0, -0.1, -1.0));
/// let mut work = WorkCounters::new();
/// assert!(index.closest_hit(&ray, &mut work).is_some());
/// ```
#[derive(Debug)]
pub struct SceneIndex<'a> {
    scene: &'a Scene,
    bvh: Option<Bvh>,
    accel: Accel,
    vector_mode: VectorMode,
    bounded: Vec<usize>,
    unbounded: Vec<usize>,
}

impl<'a> SceneIndex<'a> {
    /// Prepares a scene for queries; builds the BVH when requested.
    pub fn build(scene: &'a Scene, accel: Accel, vector_mode: VectorMode) -> Self {
        let bvh = match accel {
            Accel::BruteForce => None,
            Accel::Bvh => Some(Bvh::build(scene)),
        };
        SceneIndex {
            scene,
            bvh,
            accel,
            vector_mode,
            bounded: scene.bounded_indices(),
            unbounded: scene.unbounded_indices(),
        }
    }

    /// The underlying scene.
    pub fn scene(&self) -> &Scene {
        self.scene
    }

    /// The configured acceleration structure.
    pub fn accel(&self) -> Accel {
        self.accel
    }

    /// Tests a list of object indices, linearly or in vector batches.
    fn test_list(
        &self,
        indices: &[usize],
        ray: &Ray,
        t_max: &mut f64,
        work: &mut WorkCounters,
    ) -> Option<(usize, Hit)> {
        let mut best = None;
        match self.vector_mode {
            VectorMode::Scalar => {
                for &i in indices {
                    work.scalar_tests += 1;
                    if let Some(h) = self.scene.objects()[i].primitive.intersect(ray, *t_max) {
                        *t_max = h.t;
                        best = Some((i, h));
                    }
                }
            }
            VectorMode::Vectorized => {
                // Batch loop: compute all lane results against the batch-
                // entry t_max (lanes are independent on the VFPU), then
                // reduce — structurally how a vector unit would do it.
                for chunk in indices.chunks(VECTOR_WIDTH) {
                    work.vector_chunks += 1;
                    let entry_t = *t_max;
                    let mut lane_hits: [Option<Hit>; VECTOR_WIDTH] = [None; VECTOR_WIDTH];
                    for (lane, &i) in chunk.iter().enumerate() {
                        lane_hits[lane] = self.scene.objects()[i].primitive.intersect(ray, entry_t);
                    }
                    for (lane, &i) in chunk.iter().enumerate() {
                        if let Some(h) = lane_hits[lane] {
                            if h.t < *t_max {
                                *t_max = h.t;
                                best = Some((i, h));
                            }
                        }
                    }
                }
            }
        }
        best
    }

    /// The closest hit along `ray`, with the index of the hit object.
    pub fn closest_hit(&self, ray: &Ray, work: &mut WorkCounters) -> Option<(usize, Hit)> {
        let mut t_max = f64::INFINITY;
        let mut best = match (&self.bvh, self.accel) {
            (Some(bvh), Accel::Bvh) => {
                let b = bvh.closest_hit(self.scene, ray, t_max, work);
                if let Some((_, h)) = &b {
                    t_max = h.t;
                }
                b
            }
            _ => self.test_list(&self.bounded, ray, &mut t_max, work),
        };
        // Planes are always tested linearly.
        if let Some(hit) = self.test_list(&self.unbounded, ray, &mut t_max, work) {
            best = Some(hit);
        }
        best
    }

    /// Returns `true` if anything blocks `ray` before `t_max`.
    pub fn occluded(&self, ray: &Ray, t_max: f64, work: &mut WorkCounters) -> bool {
        work.shadow_queries += 1;
        match (&self.bvh, self.accel) {
            (Some(bvh), Accel::Bvh) => {
                if bvh.occluded(self.scene, ray, t_max, work) {
                    return true;
                }
            }
            _ => {
                let mut t = t_max;
                if self.test_list(&self.bounded, ray, &mut t, work).is_some() {
                    return true;
                }
            }
        }
        let mut t = t_max;
        self.test_list(&self.unbounded, ray, &mut t, work).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::geometry::{Plane, Sphere};
    use crate::material::Material;
    use crate::math::Vec3;
    use proptest::prelude::*;

    fn scene() -> Scene {
        let mut s = Scene::new(Color::BLACK);
        for i in 0..12 {
            s.add(
                Sphere::new(Vec3::new(i as f64 * 2.5 - 14.0, 0.0, -15.0), 1.0),
                Material::default(),
            );
        }
        s.add(
            Plane::new(Vec3::new(0.0, -3.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
            Material::default(),
        );
        s
    }

    #[test]
    fn all_four_configurations_agree() {
        let s = scene();
        let configs = [
            (Accel::BruteForce, VectorMode::Scalar),
            (Accel::BruteForce, VectorMode::Vectorized),
            (Accel::Bvh, VectorMode::Scalar),
            (Accel::Bvh, VectorMode::Vectorized),
        ];
        let ray = Ray::new(Vec3::new(-14.0, 0.3, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let hits: Vec<_> = configs
            .iter()
            .map(|&(a, v)| {
                let idx = SceneIndex::build(&s, a, v);
                let mut w = WorkCounters::new();
                idx.closest_hit(&ray, &mut w)
                    .map(|(i, h)| (i, (h.t * 1e9) as u64))
            })
            .collect();
        assert!(hits.windows(2).all(|w| w[0] == w[1]), "{hits:?}");
        assert!(hits[0].is_some());
    }

    #[test]
    fn vectorized_counts_chunks() {
        let s = scene();
        let idx = SceneIndex::build(&s, Accel::BruteForce, VectorMode::Vectorized);
        let ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let mut w = WorkCounters::new();
        idx.closest_hit(&ray, &mut w);
        // 12 bounded spheres -> 3 chunks of 4, plus the plane list as one
        // (partially filled) chunk.
        assert_eq!(w.vector_chunks, 4);
        assert_eq!(w.scalar_tests, 0);
    }

    #[test]
    fn plane_hit_found_with_bvh() {
        // The BVH holds only spheres; the floor plane must still be hit.
        let s = scene();
        let idx = SceneIndex::build(&s, Accel::Bvh, VectorMode::Scalar);
        let ray = Ray::new(Vec3::new(50.0, 0.0, 0.0), Vec3::new(0.0, -1.0, -0.01));
        let mut w = WorkCounters::new();
        let (i, _) = idx.closest_hit(&ray, &mut w).expect("floor must be hit");
        assert_eq!(i, 12);
    }

    #[test]
    fn occlusion_counts_queries() {
        let s = scene();
        let idx = SceneIndex::build(&s, Accel::BruteForce, VectorMode::Scalar);
        let ray = Ray::new(Vec3::new(-14.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let mut w = WorkCounters::new();
        assert!(idx.occluded(&ray, f64::INFINITY, &mut w));
        assert!(!idx.occluded(&ray, 1.0, &mut w));
        assert_eq!(w.shadow_queries, 2);
    }

    proptest! {
        /// Scalar and vectorized paths return identical hits for random
        /// rays (the VFPU batch is a pure cost-model distinction).
        #[test]
        fn scalar_equals_vectorized(
            ox in -20.0f64..20.0, oy in -5.0f64..5.0,
            dx in -1.0f64..1.0, dy in -1.0f64..1.0,
        ) {
            let s = scene();
            let ray = Ray::new(Vec3::new(ox, oy, 0.0), Vec3::new(dx, dy, -1.0));
            let scalar = SceneIndex::build(&s, Accel::BruteForce, VectorMode::Scalar);
            let vector = SceneIndex::build(&s, Accel::BruteForce, VectorMode::Vectorized);
            let mut w1 = WorkCounters::new();
            let mut w2 = WorkCounters::new();
            let a = scalar.closest_hit(&ray, &mut w1);
            let b = vector.closest_hit(&ray, &mut w2);
            match (a, b) {
                (None, None) => {}
                (Some((i, h1)), Some((j, h2))) => {
                    prop_assert_eq!(i, j);
                    prop_assert!((h1.t - h2.t).abs() < 1e-12);
                }
                other => prop_assert!(false, "mismatch {:?}", other),
            }
        }
    }
}
