//! Pinhole camera.

use crate::math::{Ray, Vec3};

/// A pinhole camera generating eye rays through image-plane pixels —
/// Figure 4's "eye" and "screen".
///
/// # Examples
///
/// ```
/// use raytracer::camera::Camera;
/// use raytracer::math::Vec3;
///
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 0.0, 5.0),
///     Vec3::ZERO,
///     Vec3::new(0.0, 1.0, 0.0),
///     60.0,
///     1.0,
/// );
/// let center = cam.ray_for(256, 256, 512, 512, (0.5, 0.5));
/// assert!(center.dir.z < -0.99, "center ray looks straight down -z");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    eye: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
}

impl Camera {
    /// Builds a camera at `eye` looking at `target`.
    ///
    /// # Panics
    ///
    /// Panics if `fov_deg` is not in `(0, 180)` or `aspect` is not
    /// positive, or if `up` is parallel to the view direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3, fov_deg: f64, aspect: f64) -> Self {
        assert!(
            fov_deg > 0.0 && fov_deg < 180.0,
            "field of view must be in (0, 180)"
        );
        assert!(aspect > 0.0, "aspect ratio must be positive");
        let theta = fov_deg.to_radians();
        let half_h = (theta / 2.0).tan();
        let half_w = aspect * half_h;
        let w = (eye - target).normalized(); // backwards
        let u = up.cross(w).normalized();
        let v = w.cross(u);
        Camera {
            eye,
            lower_left: eye - u * half_w - v * half_h - w,
            horizontal: u * (2.0 * half_w),
            vertical: v * (2.0 * half_h),
        }
    }

    /// The eye position.
    pub fn eye(&self) -> Vec3 {
        self.eye
    }

    /// The eye ray through pixel `(px, py)` of a `width`×`height` image.
    /// `offset` is the sub-pixel sample position in `[0, 1)²`
    /// (`(0.5, 0.5)` = pixel center); pixel `(0, 0)` is top-left.
    ///
    /// # Panics
    ///
    /// Panics if the pixel lies outside the image.
    pub fn ray_for(&self, px: u32, py: u32, width: u32, height: u32, offset: (f64, f64)) -> Ray {
        assert!(
            px < width && py < height,
            "pixel ({px},{py}) outside {width}x{height}"
        );
        let s = (px as f64 + offset.0) / width as f64;
        // Flip y so py=0 is the top row.
        let t = 1.0 - (py as f64 + offset.1) / height as f64;
        let target = self.lower_left + self.horizontal * s + self.vertical * t;
        Ray::new(self.eye, target - self.eye)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
            90.0,
            1.0,
        )
    }

    #[test]
    fn corner_rays_diverge() {
        let c = cam();
        let tl = c.ray_for(0, 0, 100, 100, (0.0, 0.0));
        let br = c.ray_for(99, 99, 100, 100, (1.0, 1.0));
        assert!(tl.dir.x < 0.0 && tl.dir.y > 0.0);
        assert!(br.dir.x > 0.0 && br.dir.y < 0.0);
    }

    #[test]
    fn rays_originate_at_eye() {
        let c = cam();
        let r = c.ray_for(10, 20, 100, 100, (0.5, 0.5));
        assert_eq!(r.origin, Vec3::new(0.0, 0.0, 5.0));
        assert!((r.dir.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversampling_offsets_shift_rays() {
        let c = cam();
        let a = c.ray_for(50, 50, 100, 100, (0.25, 0.25));
        let b = c.ray_for(50, 50, 100, 100, (0.75, 0.75));
        assert_ne!(a.dir, b.dir);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_image_panics() {
        cam().ray_for(100, 0, 100, 100, (0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "(0, 180)")]
    fn bad_fov_panics() {
        Camera::look_at(
            Vec3::ZERO,
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(0.0, 1.0, 0.0),
            0.0,
            1.0,
        );
    }
}
