//! Surface materials for Whitted-style shading.

use crate::color::Color;
use crate::math::Vec3;

/// A procedural checkerboard — the signature floor of Whitted's 1980
/// images. Evaluated in the xz plane of the hit point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckerTexture {
    /// Colour of the even squares.
    pub a: Color,
    /// Colour of the odd squares.
    pub b: Color,
    /// Side length of one square.
    pub scale: f64,
}

impl CheckerTexture {
    /// The colour at a surface point.
    pub fn color_at(&self, point: Vec3) -> Color {
        let u = (point.x / self.scale).floor() as i64;
        let v = (point.z / self.scale).floor() as i64;
        if (u + v).rem_euclid(2) == 0 {
            self.a
        } else {
            self.b
        }
    }
}

/// Phong-style material with reflection and transmission coefficients.
///
/// The colour of a hit combines an ambient term, diffuse and specular
/// lighting, a recursively traced reflection (if `reflectivity > 0`) and
/// a recursively traced transmission (if `transparency > 0`) — the three
/// contributions described in the paper's §4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Base surface colour (overridden per point by `texture`, if set).
    pub color: Color,
    /// Optional procedural texture.
    pub texture: Option<CheckerTexture>,
    /// Ambient coefficient.
    pub ambient: f64,
    /// Diffuse coefficient.
    pub diffuse: f64,
    /// Specular coefficient.
    pub specular: f64,
    /// Phong exponent.
    pub shininess: f64,
    /// Fraction of light contributed by the reflected ray.
    pub reflectivity: f64,
    /// Fraction of light contributed by the transmitted ray.
    pub transparency: f64,
    /// Index of refraction (used when `transparency > 0`).
    pub ior: f64,
}

impl Material {
    /// A plain diffuse surface.
    pub fn matte(color: Color) -> Self {
        Material {
            color,
            texture: None,
            ambient: 0.1,
            diffuse: 0.9,
            specular: 0.0,
            shininess: 1.0,
            reflectivity: 0.0,
            transparency: 0.0,
            ior: 1.0,
        }
    }

    /// A "shiny" surface: diffuse plus a mirror component.
    pub fn shiny(color: Color, reflectivity: f64) -> Self {
        Material {
            color,
            texture: None,
            ambient: 0.1,
            diffuse: 0.7,
            specular: 0.6,
            shininess: 40.0,
            reflectivity: reflectivity.clamp(0.0, 1.0),
            transparency: 0.0,
            ior: 1.0,
        }
    }

    /// A near-perfect mirror.
    pub fn mirror() -> Self {
        Material {
            color: Color::grey(0.95),
            texture: None,
            ambient: 0.02,
            diffuse: 0.05,
            specular: 0.8,
            shininess: 200.0,
            reflectivity: 0.9,
            transparency: 0.0,
            ior: 1.0,
        }
    }

    /// A transparent, refracting surface.
    pub fn glass(ior: f64) -> Self {
        Material {
            color: Color::grey(0.98),
            texture: None,
            ambient: 0.02,
            diffuse: 0.05,
            specular: 0.9,
            shininess: 120.0,
            reflectivity: 0.1,
            transparency: 0.85,
            ior,
        }
    }

    /// A checkerboard floor material (Whitted's classic).
    pub fn checker(a: Color, b: Color, scale: f64) -> Self {
        Material {
            texture: Some(CheckerTexture { a, b, scale }),
            ..Material::shiny(a, 0.25)
        }
    }

    /// The surface colour at `point` (texture-aware).
    pub fn color_at(&self, point: Vec3) -> Color {
        match &self.texture {
            Some(t) => t.color_at(point),
            None => self.color,
        }
    }

    /// Returns `true` if hitting this material spawns secondary rays.
    pub fn spawns_secondary_rays(&self) -> bool {
        self.reflectivity > 0.0 || self.transparency > 0.0
    }
}

impl Default for Material {
    fn default() -> Self {
        Material::matte(Color::grey(0.8))
    }
}

/// A point light source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Light {
    /// Light position.
    pub position: crate::math::Vec3,
    /// Light colour/intensity.
    pub color: Color,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        assert!(!Material::matte(Color::WHITE).spawns_secondary_rays());
        assert!(Material::mirror().spawns_secondary_rays());
        assert!(Material::glass(1.5).spawns_secondary_rays());
        assert!(Material::glass(1.5).transparency > 0.5);
        assert_eq!(Material::shiny(Color::WHITE, 2.0).reflectivity, 1.0);
    }

    #[test]
    fn checker_alternates_squares() {
        let m = Material::checker(Color::WHITE, Color::BLACK, 2.0);
        assert_eq!(m.color_at(Vec3::new(0.5, 0.0, 0.5)), Color::WHITE);
        assert_eq!(m.color_at(Vec3::new(2.5, 0.0, 0.5)), Color::BLACK);
        assert_eq!(m.color_at(Vec3::new(2.5, 0.0, 2.5)), Color::WHITE);
        // Negative coordinates keep alternating without a seam.
        assert_eq!(m.color_at(Vec3::new(-0.5, 0.0, 0.5)), Color::BLACK);
        // Untextured materials return their base colour anywhere.
        let plain = Material::matte(Color::WHITE);
        assert_eq!(plain.color_at(Vec3::new(17.0, 3.0, -9.0)), Color::WHITE);
    }

    #[test]
    fn default_is_matte() {
        let m = Material::default();
        assert_eq!(m.reflectivity, 0.0);
        assert_eq!(m.transparency, 0.0);
    }
}
