//! Geometric primitives and intersection routines.

mod aabb;
mod plane;
mod sphere;
mod triangle;

pub use aabb::Aabb;
pub use plane::Plane;
pub use sphere::Sphere;
pub use triangle::Triangle;

use crate::math::{Ray, Vec3};

/// Minimum ray parameter accepted by intersection tests; avoids
/// self-intersection of secondary rays ("shadow acne").
pub const T_MIN: f64 = 1e-6;

/// A ray-surface intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Ray parameter of the intersection point.
    pub t: f64,
    /// The intersection point.
    pub point: Vec3,
    /// Outward unit surface normal (flipped toward the ray origin).
    pub normal: Vec3,
}

/// Any shape a ray can hit.
pub trait Intersect {
    /// The closest intersection with `t` in `(T_MIN, t_max)`, if any.
    fn intersect(&self, ray: &Ray, t_max: f64) -> Option<Hit>;

    /// The shape's bounding box.
    fn bounds(&self) -> Aabb;
}

/// A concrete scene primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// A sphere.
    Sphere(Sphere),
    /// An infinite plane.
    Plane(Plane),
    /// A triangle.
    Triangle(Triangle),
}

impl Primitive {
    /// Short kind name for statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Primitive::Sphere(_) => "sphere",
            Primitive::Plane(_) => "plane",
            Primitive::Triangle(_) => "triangle",
        }
    }

    /// Returns `true` for unbounded primitives (planes), which cannot go
    /// into a BVH.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, Primitive::Plane(_))
    }
}

impl Intersect for Primitive {
    fn intersect(&self, ray: &Ray, t_max: f64) -> Option<Hit> {
        match self {
            Primitive::Sphere(s) => s.intersect(ray, t_max),
            Primitive::Plane(p) => p.intersect(ray, t_max),
            Primitive::Triangle(t) => t.intersect(ray, t_max),
        }
    }

    fn bounds(&self) -> Aabb {
        match self {
            Primitive::Sphere(s) => s.bounds(),
            Primitive::Plane(p) => p.bounds(),
            Primitive::Triangle(t) => t.bounds(),
        }
    }
}

impl From<Sphere> for Primitive {
    fn from(s: Sphere) -> Self {
        Primitive::Sphere(s)
    }
}

impl From<Plane> for Primitive {
    fn from(p: Plane) -> Self {
        Primitive::Plane(p)
    }
}

impl From<Triangle> for Primitive {
    fn from(t: Triangle) -> Self {
        Primitive::Triangle(t)
    }
}
