//! Triangle primitive (Möller–Trumbore intersection).

use crate::math::{Ray, Vec3};

use super::{Aabb, Hit, Intersect, T_MIN};

/// A triangle defined by three vertices.
///
/// # Examples
///
/// ```
/// use raytracer::geometry::{Intersect, Triangle};
/// use raytracer::math::{Ray, Vec3};
///
/// let tri = Triangle::new(
///     Vec3::new(-1.0, -1.0, -3.0),
///     Vec3::new(1.0, -1.0, -3.0),
///     Vec3::new(0.0, 1.0, -3.0),
/// );
/// let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
/// assert!((tri.intersect(&ray, f64::INFINITY).unwrap().t - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    a: Vec3,
    b: Vec3,
    c: Vec3,
}

impl Triangle {
    /// Creates a triangle from its vertices.
    ///
    /// # Panics
    ///
    /// Panics if the vertices are (numerically) collinear.
    pub fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        let area2 = (b - a).cross(c - a).length();
        assert!(area2 > 1e-12, "degenerate triangle");
        Triangle { a, b, c }
    }

    /// The vertices.
    pub fn vertices(&self) -> (Vec3, Vec3, Vec3) {
        (self.a, self.b, self.c)
    }

    /// Geometric (unnormalized-winding) unit normal.
    pub fn normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a).normalized()
    }
}

impl Intersect for Triangle {
    fn intersect(&self, ray: &Ray, t_max: f64) -> Option<Hit> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < 1e-12 {
            return None;
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t <= T_MIN || t >= t_max {
            return None;
        }
        let mut normal = self.normal();
        if normal.dot(ray.dir) > 0.0 {
            normal = -normal;
        }
        Some(Hit {
            t,
            point: ray.at(t),
            normal,
        })
    }

    fn bounds(&self) -> Aabb {
        Aabb::new(
            self.a.min(self.b).min(self.c),
            self.a.max(self.b).max(self.c),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tri() -> Triangle {
        Triangle::new(
            Vec3::new(-1.0, -1.0, -3.0),
            Vec3::new(1.0, -1.0, -3.0),
            Vec3::new(0.0, 1.0, -3.0),
        )
    }

    #[test]
    fn edge_cases_miss() {
        // Outside the triangle.
        let ray = Ray::new(Vec3::new(5.0, 5.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(tri().intersect(&ray, f64::INFINITY).is_none());
        // Parallel to the triangle plane.
        let ray = Ray::new(Vec3::new(0.0, 0.0, -1.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(tri().intersect(&ray, f64::INFINITY).is_none());
    }

    #[test]
    fn normal_faces_ray() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = tri().intersect(&ray, f64::INFINITY).unwrap();
        assert!(hit.normal.dot(ray.dir) < 0.0);
    }

    #[test]
    fn bounds_enclose_vertices() {
        let b = tri().bounds();
        assert_eq!(b.min(), Vec3::new(-1.0, -1.0, -3.0));
        assert_eq!(b.max(), Vec3::new(1.0, 1.0, -3.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_panics() {
        Triangle::new(
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
        );
    }

    proptest! {
        /// Rays through random interior barycentric points always hit.
        #[test]
        fn interior_points_hit(u in 0.05f64..0.9, w in 0.05f64..0.9) {
            prop_assume!(u + w < 0.95);
            let t = tri();
            let (a, b, c) = t.vertices();
            let target = a * (1.0 - u - w) + b * u + c * w;
            let origin = Vec3::new(0.0, 0.0, 2.0);
            let ray = Ray::new(origin, target - origin);
            let hit = t.intersect(&ray, f64::INFINITY);
            prop_assert!(hit.is_some());
            prop_assert!((hit.unwrap().point - target).length() < 1e-6);
        }
    }
}
