//! Axis-aligned bounding boxes ("parallelepipeds").
//!
//! The paper's future work proposes "a hierarchical bounding volume
//! scheme based on parallelopipeds"; these boxes are the volumes, and
//! [`crate::bvh`] is the hierarchy.

use crate::math::{Ray, Vec3};

/// An axis-aligned box.
///
/// # Examples
///
/// ```
/// use raytracer::geometry::Aabb;
/// use raytracer::math::{Ray, Vec3};
///
/// let b = Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0));
/// let ray = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
/// assert!(b.hit_by(&ray, f64::INFINITY));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from its corners (swapped per-axis if necessary).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box (identity of [`union`](Self::union)).
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Lower corner.
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Upper corner.
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Box center.
    pub fn centroid(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extent.
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// The smallest box containing both.
    pub fn union(&self, o: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(o.min),
            max: self.max.max(o.max),
        }
    }

    /// Grows the box to contain a point.
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns `true` if the box contains no volume (never expanded).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x
    }

    /// Surface area (for SAH-style heuristics and tests).
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// Slab test: does `ray` enter the box within `(0, t_max)`?
    pub fn hit_by(&self, ray: &Ray, t_max: f64) -> bool {
        let mut t0 = 0.0f64;
        let mut t1 = t_max;
        for axis in 0..3 {
            let inv = 1.0 / ray.dir.axis(axis);
            let mut near = (self.min.axis(axis) - ray.origin.axis(axis)) * inv;
            let mut far = (self.max.axis(axis) - ray.origin.axis(axis)) * inv;
            if inv < 0.0 {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit() -> Aabb {
        Aabb::new(Vec3::new(-1.0, -1.0, -1.0), Vec3::new(1.0, 1.0, 1.0))
    }

    #[test]
    fn corners_normalize() {
        let b = Aabb::new(Vec3::new(1.0, -1.0, 5.0), Vec3::new(-1.0, 1.0, 3.0));
        assert_eq!(b.min(), Vec3::new(-1.0, -1.0, 3.0));
        assert_eq!(b.max(), Vec3::new(1.0, 1.0, 5.0));
    }

    #[test]
    fn miss_and_hit() {
        let b = unit();
        let hit = Ray::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        let miss = Ray::new(Vec3::new(5.0, 5.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(b.hit_by(&hit, f64::INFINITY));
        assert!(!b.hit_by(&miss, f64::INFINITY));
    }

    #[test]
    fn t_max_culls() {
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -12.0), Vec3::new(1.0, 1.0, -10.0));
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        assert!(!b.hit_by(&ray, 5.0));
        assert!(b.hit_by(&ray, 50.0));
    }

    #[test]
    fn ray_from_inside_hits() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert!(unit().hit_by(&ray, f64::INFINITY));
    }

    #[test]
    fn union_and_empty() {
        let mut e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.surface_area(), 0.0);
        e.expand(Vec3::new(1.0, 2.0, 3.0));
        assert!(!e.is_empty());
        let u = e.union(&unit());
        assert_eq!(u.min(), Vec3::new(-1.0, -1.0, -1.0));
        assert_eq!(u.max(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn surface_area_of_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(b.surface_area(), 6.0);
    }

    proptest! {
        /// A ray aimed at a point inside the box always passes the slab
        /// test.
        #[test]
        fn aimed_rays_hit(
            px in -0.9f64..0.9, py in -0.9f64..0.9, pz in -0.9f64..0.9,
            ox in -10.0f64..10.0, oy in -10.0f64..10.0,
        ) {
            let target = Vec3::new(px, py, pz);
            let origin = Vec3::new(ox, oy, 5.0);
            let ray = Ray::new(origin, target - origin);
            prop_assert!(unit().hit_by(&ray, f64::INFINITY));
        }
    }
}
