//! Sphere primitive.

use crate::math::{Ray, Vec3};

use super::{Aabb, Hit, Intersect, T_MIN};

/// A sphere.
///
/// # Examples
///
/// ```
/// use raytracer::geometry::{Intersect, Sphere};
/// use raytracer::math::{Ray, Vec3};
///
/// let s = Sphere::new(Vec3::new(0.0, 0.0, -5.0), 1.0);
/// let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
/// let hit = s.intersect(&ray, f64::INFINITY).unwrap();
/// assert!((hit.t - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    center: Vec3,
    radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not positive.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive");
        Sphere { center, radius }
    }

    /// The center point.
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// The radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl Intersect for Sphere {
    fn intersect(&self, ray: &Ray, t_max: f64) -> Option<Hit> {
        let oc = ray.origin - self.center;
        let b = oc.dot(ray.dir);
        let c = oc.length_squared() - self.radius * self.radius;
        let disc = b * b - c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_d = disc.sqrt();
        let mut t = -b - sqrt_d;
        if t <= T_MIN {
            t = -b + sqrt_d;
        }
        if t <= T_MIN || t >= t_max {
            return None;
        }
        let point = ray.at(t);
        let mut normal = (point - self.center) / self.radius;
        if normal.dot(ray.dir) > 0.0 {
            normal = -normal; // hit from inside
        }
        Some(Hit { t, point, normal })
    }

    fn bounds(&self) -> Aabb {
        let r = Vec3::splat(self.radius);
        Aabb::new(self.center - r, self.center + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_at_origin() -> Sphere {
        Sphere::new(Vec3::ZERO, 1.0)
    }

    #[test]
    fn miss_returns_none() {
        let ray = Ray::new(Vec3::new(0.0, 5.0, 5.0), Vec3::new(0.0, 0.0, -1.0));
        assert!(unit_at_origin().intersect(&ray, f64::INFINITY).is_none());
    }

    #[test]
    fn hit_from_inside_flips_normal() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        let hit = unit_at_origin().intersect(&ray, f64::INFINITY).unwrap();
        assert!((hit.t - 1.0).abs() < 1e-9);
        // Normal points back toward the origin.
        assert!(hit.normal.dot(ray.dir) < 0.0);
    }

    #[test]
    fn t_max_culls() {
        let s = Sphere::new(Vec3::new(0.0, 0.0, -10.0), 1.0);
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        assert!(s.intersect(&ray, 5.0).is_none());
        assert!(s.intersect(&ray, 20.0).is_some());
    }

    #[test]
    fn bounds_enclose() {
        let s = Sphere::new(Vec3::new(1.0, 2.0, 3.0), 2.0);
        let b = s.bounds();
        assert_eq!(b.min(), Vec3::new(-1.0, 0.0, 1.0));
        assert_eq!(b.max(), Vec3::new(3.0, 4.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        Sphere::new(Vec3::ZERO, 0.0);
    }
}
