//! Infinite plane primitive.

use crate::math::{Ray, Vec3};

use super::{Aabb, Hit, Intersect, T_MIN};

/// An infinite plane through `point` with unit `normal`.
///
/// # Examples
///
/// ```
/// use raytracer::geometry::{Intersect, Plane};
/// use raytracer::math::{Ray, Vec3};
///
/// let floor = Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
/// let ray = Ray::new(Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, -1.0, 0.0));
/// assert!((floor.intersect(&ray, f64::INFINITY).unwrap().t - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    point: Vec3,
    normal: Vec3,
}

impl Plane {
    /// Creates a plane; the normal is normalized.
    pub fn new(point: Vec3, normal: Vec3) -> Self {
        Plane {
            point,
            normal: normal.normalized(),
        }
    }

    /// A point on the plane.
    pub fn point(&self) -> Vec3 {
        self.point
    }

    /// The unit normal.
    pub fn normal(&self) -> Vec3 {
        self.normal
    }
}

impl Intersect for Plane {
    fn intersect(&self, ray: &Ray, t_max: f64) -> Option<Hit> {
        let denom = self.normal.dot(ray.dir);
        if denom.abs() < 1e-12 {
            return None; // parallel
        }
        let t = (self.point - ray.origin).dot(self.normal) / denom;
        if t <= T_MIN || t >= t_max {
            return None;
        }
        let normal = if denom < 0.0 {
            self.normal
        } else {
            -self.normal
        };
        Some(Hit {
            t,
            point: ray.at(t),
            normal,
        })
    }

    fn bounds(&self) -> Aabb {
        // Unbounded; callers must keep planes out of the BVH.
        Aabb::new(Vec3::splat(f64::NEG_INFINITY), Vec3::splat(f64::INFINITY))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_ray_misses() {
        let p = Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        let ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(p.intersect(&ray, f64::INFINITY).is_none());
    }

    #[test]
    fn behind_origin_misses() {
        let p = Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        let ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert!(p.intersect(&ray, f64::INFINITY).is_none());
    }

    #[test]
    fn normal_faces_ray() {
        let p = Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        // Hit from below: the reported normal must point down.
        let ray = Ray::new(Vec3::new(0.0, -2.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        let hit = p.intersect(&ray, f64::INFINITY).unwrap();
        assert!(hit.normal.y < 0.0);
    }

    #[test]
    fn bounds_are_unbounded() {
        let p = Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!(p.bounds().min().x.is_infinite());
    }
}
