//! RGB colour values.

use std::ops::{Add, AddAssign, Mul};

/// A linear RGB colour with `f64` components (not clamped until
/// quantization).
///
/// # Examples
///
/// ```
/// use raytracer::color::Color;
///
/// let c = Color::new(0.5, 0.25, 2.0);
/// assert_eq!(c.to_rgb8(), (127, 63, 255));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Color {
    /// Red component.
    pub r: f64,
    /// Green component.
    pub g: f64,
    /// Blue component.
    pub b: f64,
}

impl Color {
    /// Black.
    pub const BLACK: Color = Color {
        r: 0.0,
        g: 0.0,
        b: 0.0,
    };
    /// White.
    pub const WHITE: Color = Color {
        r: 1.0,
        g: 1.0,
        b: 1.0,
    };

    /// Creates a colour from components.
    pub const fn new(r: f64, g: f64, b: f64) -> Self {
        Color { r, g, b }
    }

    /// A grey level.
    pub const fn grey(v: f64) -> Self {
        Color { r: v, g: v, b: v }
    }

    /// Component-wise product (filtering light through a surface).
    pub fn modulate(self, o: Color) -> Color {
        Color::new(self.r * o.r, self.g * o.g, self.b * o.b)
    }

    /// Perceptual luminance approximation.
    pub fn luminance(self) -> f64 {
        0.2126 * self.r + 0.7152 * self.g + 0.0722 * self.b
    }

    /// Quantizes to 8-bit RGB, clamping to `[0, 1]`.
    pub fn to_rgb8(self) -> (u8, u8, u8) {
        let q = |v: f64| (v.clamp(0.0, 1.0) * 255.0) as u8;
        (q(self.r), q(self.g), q(self.b))
    }
}

impl Add for Color {
    type Output = Color;
    fn add(self, o: Color) -> Color {
        Color::new(self.r + o.r, self.g + o.g, self.b + o.b)
    }
}

impl AddAssign for Color {
    fn add_assign(&mut self, o: Color) {
        *self = *self + o;
    }
}

impl Mul<f64> for Color {
    type Output = Color;
    fn mul(self, s: f64) -> Color {
        Color::new(self.r * s, self.g * s, self.b * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_clamps() {
        assert_eq!(Color::new(-1.0, 0.5, 3.0).to_rgb8(), (0, 127, 255));
        assert_eq!(Color::BLACK.to_rgb8(), (0, 0, 0));
        assert_eq!(Color::WHITE.to_rgb8(), (255, 255, 255));
    }

    #[test]
    fn modulate_filters() {
        let light = Color::new(1.0, 0.5, 0.0);
        let surface = Color::new(0.5, 0.5, 0.5);
        assert_eq!(light.modulate(surface), Color::new(0.5, 0.25, 0.0));
    }

    #[test]
    fn luminance_ordering() {
        assert!(Color::new(0.0, 1.0, 0.0).luminance() > Color::new(0.0, 0.0, 1.0).luminance());
        assert_eq!(Color::grey(0.5).luminance(), 0.5);
    }

    #[test]
    fn arithmetic() {
        let mut c = Color::new(0.1, 0.2, 0.3);
        c += Color::new(0.1, 0.1, 0.1) * 2.0;
        assert!((c.r - 0.3).abs() < 1e-12);
        assert!((c.g - 0.4).abs() < 1e-12);
    }
}
