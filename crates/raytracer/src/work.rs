//! Work counters: how much computation tracing a ray actually required.
//!
//! "The time to compute a ray varies considerably" (paper §4.2) — this
//! variance is what makes static ray partitioning perform poorly and
//! motivates the paper's dynamic scheme. The counters feed
//! [`crate::cost::CostModel`], which converts real geometric work into
//! simulated MC68020 time, so the variance in the simulation comes from
//! actual scene geometry rather than a synthetic distribution.

use std::ops::{Add, AddAssign};

/// Counts of the elementary operations performed while tracing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Rays cast (primary + secondary + shadow).
    pub rays: u64,
    /// Ray–primitive intersection tests executed one at a time.
    pub scalar_tests: u64,
    /// Batched (vectorized) intersection test *chunks* executed on the
    /// VFPU path; each chunk tests up to [`crate::intersect::VECTOR_WIDTH`]
    /// primitives.
    pub vector_chunks: u64,
    /// BVH nodes visited.
    pub bvh_visits: u64,
    /// Shadow (occlusion) queries.
    pub shadow_queries: u64,
    /// Surface shading evaluations.
    pub shadings: u64,
    /// Reflection rays spawned.
    pub reflections: u64,
    /// Refraction rays spawned.
    pub refractions: u64,
}

impl WorkCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        WorkCounters::default()
    }

    /// Total intersection-test units (each vector chunk counts once —
    /// that is its point).
    pub fn test_units(&self) -> u64 {
        self.scalar_tests + self.vector_chunks
    }

    /// Returns `true` if nothing was counted.
    pub fn is_zero(&self) -> bool {
        *self == WorkCounters::default()
    }
}

impl Add for WorkCounters {
    type Output = WorkCounters;
    fn add(self, o: WorkCounters) -> WorkCounters {
        WorkCounters {
            rays: self.rays + o.rays,
            scalar_tests: self.scalar_tests + o.scalar_tests,
            vector_chunks: self.vector_chunks + o.vector_chunks,
            bvh_visits: self.bvh_visits + o.bvh_visits,
            shadow_queries: self.shadow_queries + o.shadow_queries,
            shadings: self.shadings + o.shadings,
            reflections: self.reflections + o.reflections,
            refractions: self.refractions + o.refractions,
        }
    }
}

impl AddAssign for WorkCounters {
    fn add_assign(&mut self, o: WorkCounters) {
        *self = *self + o;
    }
}

impl std::iter::Sum for WorkCounters {
    fn sum<I: Iterator<Item = WorkCounters>>(iter: I) -> Self {
        iter.fold(WorkCounters::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_fieldwise() {
        let a = WorkCounters {
            rays: 1,
            scalar_tests: 10,
            ..WorkCounters::default()
        };
        let b = WorkCounters {
            rays: 2,
            shadings: 5,
            ..WorkCounters::default()
        };
        let c = a + b;
        assert_eq!(c.rays, 3);
        assert_eq!(c.scalar_tests, 10);
        assert_eq!(c.shadings, 5);
        assert!(!c.is_zero());
        assert!(WorkCounters::new().is_zero());
    }

    #[test]
    fn sum_over_iterator() {
        let total: WorkCounters = (0..4)
            .map(|i| WorkCounters {
                rays: i,
                ..WorkCounters::default()
            })
            .sum();
        assert_eq!(total.rays, 6);
    }

    #[test]
    fn test_units_count_chunks_once() {
        let c = WorkCounters {
            scalar_tests: 7,
            vector_chunks: 3,
            ..WorkCounters::default()
        };
        assert_eq!(c.test_units(), 10);
    }
}
