//! The scene description language.
//!
//! The paper's servants spend their initialization "reading the scene
//! description file" — the replicated description whose size motivates
//! the object-partitioning debate of §4.1. This module defines that
//! file format: a line-oriented text language covering everything a
//! [`Scene`] and [`Camera`] hold, with an exact
//! parse ∘ serialize round trip.
//!
//! ```text
//! # comment
//! background 0.2 0.3 0.5
//! ambient 0.8 0.8 0.8
//! camera eye 0 2 2 target 0 0 -10 up 0 1 0 fov 60 aspect 1
//! light pos 8 10 2 color 0.9 0.9 0.9
//! material m0 color 0.85 0.25 0.2 ambient 0.1 diffuse 0.9 \
//!          specular 0 shininess 1 reflect 0 transparency 0 ior 1
//! sphere center 0 0 -5 radius 1 material m0
//! plane point 0 -1.5 0 normal 0 1 0 material m0
//! triangle a 0 2.5 -10 b 1 0 -9 c -1 0 -9 material m0
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use crate::camera::Camera;
use crate::color::Color;
use crate::geometry::{Plane, Primitive, Sphere, Triangle};
use crate::material::{Light, Material};
use crate::math::Vec3;
use crate::scene::Scene;

/// A parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSceneError {
    line: usize,
    message: String,
}

impl ParseSceneError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseSceneError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseSceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scene description line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseSceneError {}

/// A parsed scene description: everything needed to render.
#[derive(Debug, Clone)]
pub struct SceneDescription {
    /// The scene.
    pub scene: Scene,
    /// The camera.
    pub camera: Camera,
}

struct LineParser<'a> {
    words: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> LineParser<'a> {
    fn word(&mut self) -> Result<&'a str, ParseSceneError> {
        self.words
            .next()
            .ok_or_else(|| ParseSceneError::new(self.line, "unexpected end of line"))
    }

    fn keyword(&mut self, expected: &str) -> Result<(), ParseSceneError> {
        let w = self.word()?;
        if w == expected {
            Ok(())
        } else {
            Err(ParseSceneError::new(
                self.line,
                format!("expected '{expected}', found '{w}'"),
            ))
        }
    }

    fn number(&mut self) -> Result<f64, ParseSceneError> {
        let w = self.word()?;
        w.parse::<f64>()
            .map_err(|_| ParseSceneError::new(self.line, format!("'{w}' is not a number")))
    }

    fn vec3(&mut self) -> Result<Vec3, ParseSceneError> {
        Ok(Vec3::new(self.number()?, self.number()?, self.number()?))
    }

    fn color(&mut self) -> Result<Color, ParseSceneError> {
        Ok(Color::new(self.number()?, self.number()?, self.number()?))
    }

    fn finished(&mut self) -> Result<(), ParseSceneError> {
        match self.words.next() {
            None => Ok(()),
            Some(extra) => Err(ParseSceneError::new(
                self.line,
                format!("unexpected trailing '{extra}'"),
            )),
        }
    }
}

/// Parses a scene description.
///
/// # Errors
///
/// Returns a [`ParseSceneError`] naming the offending line for any
/// syntax problem, unknown directive, undefined material reference, or
/// missing camera.
///
/// # Examples
///
/// ```
/// use raytracer::sdl;
///
/// let text = "\
/// background 0 0 0
/// camera eye 0 0 5 target 0 0 0 up 0 1 0 fov 60 aspect 1
/// material m color 1 1 1 ambient 0.1 diffuse 0.9 specular 0 shininess 1 reflect 0 transparency 0 ior 1
/// sphere center 0 0 0 radius 1 material m
/// light pos 5 5 5 color 1 1 1
/// ";
/// let desc = sdl::parse(text)?;
/// assert_eq!(desc.scene.primitive_count(), 1);
/// # Ok::<(), raytracer::sdl::ParseSceneError>(())
/// ```
pub fn parse(text: &str) -> Result<SceneDescription, ParseSceneError> {
    let mut scene = Scene::new(Color::BLACK);
    let mut camera = None;
    let mut materials: HashMap<String, Material> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut p = LineParser {
            words: line.split_whitespace(),
            line: line_no,
        };
        let directive = p.word()?;
        match directive {
            "background" => {
                let c = p.color()?;
                // Scene::new fixes the background; rebuild preserving
                // content added so far (background should come first, but
                // order independence is friendlier).
                let mut rebuilt = Scene::new(c);
                rebuilt.set_ambient(scene.ambient());
                for obj in scene.objects() {
                    rebuilt.add(obj.primitive, obj.material);
                }
                for light in scene.lights() {
                    rebuilt.add_light(*light);
                }
                scene = rebuilt;
            }
            "ambient" => {
                let c = p.color()?;
                scene.set_ambient(c);
            }
            "camera" => {
                p.keyword("eye")?;
                let eye = p.vec3()?;
                p.keyword("target")?;
                let target = p.vec3()?;
                p.keyword("up")?;
                let up = p.vec3()?;
                p.keyword("fov")?;
                let fov = p.number()?;
                p.keyword("aspect")?;
                let aspect = p.number()?;
                if !(0.0..180.0).contains(&fov) || fov == 0.0 {
                    return Err(ParseSceneError::new(line_no, "fov must be in (0, 180)"));
                }
                if aspect <= 0.0 {
                    return Err(ParseSceneError::new(line_no, "aspect must be positive"));
                }
                camera = Some(Camera::look_at(eye, target, up, fov, aspect));
            }
            "light" => {
                p.keyword("pos")?;
                let pos = p.vec3()?;
                p.keyword("color")?;
                let c = p.color()?;
                scene.add_light(Light {
                    position: pos,
                    color: c,
                });
            }
            "material" => {
                let name = p.word()?.to_owned();
                p.keyword("color")?;
                let color = p.color()?;
                p.keyword("ambient")?;
                let ambient = p.number()?;
                p.keyword("diffuse")?;
                let diffuse = p.number()?;
                p.keyword("specular")?;
                let specular = p.number()?;
                p.keyword("shininess")?;
                let shininess = p.number()?;
                p.keyword("reflect")?;
                let reflectivity = p.number()?;
                p.keyword("transparency")?;
                let transparency = p.number()?;
                p.keyword("ior")?;
                let ior = p.number()?;
                // Optional procedural texture suffix:
                //   checker <r g b> <r g b> <scale>
                let texture = match p.words.clone().next() {
                    Some("checker") => {
                        p.keyword("checker")?;
                        let a = p.color()?;
                        let b = p.color()?;
                        let scale = p.number()?;
                        if scale <= 0.0 {
                            return Err(ParseSceneError::new(
                                line_no,
                                "checker scale must be positive",
                            ));
                        }
                        Some(crate::material::CheckerTexture { a, b, scale })
                    }
                    _ => None,
                };
                materials.insert(
                    name,
                    Material {
                        color,
                        texture,
                        ambient,
                        diffuse,
                        specular,
                        shininess,
                        reflectivity,
                        transparency,
                        ior,
                    },
                );
            }
            "sphere" => {
                p.keyword("center")?;
                let center = p.vec3()?;
                p.keyword("radius")?;
                let radius = p.number()?;
                if radius <= 0.0 {
                    return Err(ParseSceneError::new(line_no, "radius must be positive"));
                }
                let material = material_ref(&mut p, &materials)?;
                scene.add(Sphere::new(center, radius), material);
            }
            "plane" => {
                p.keyword("point")?;
                let point = p.vec3()?;
                p.keyword("normal")?;
                let normal = p.vec3()?;
                if normal.length() < 1e-9 {
                    return Err(ParseSceneError::new(line_no, "normal must be nonzero"));
                }
                let material = material_ref(&mut p, &materials)?;
                scene.add(Plane::new(point, normal), material);
            }
            "triangle" => {
                p.keyword("a")?;
                let a = p.vec3()?;
                p.keyword("b")?;
                let b = p.vec3()?;
                p.keyword("c")?;
                let c = p.vec3()?;
                let area2 = (b - a).cross(c - a).length();
                if area2 <= 1e-12 {
                    return Err(ParseSceneError::new(line_no, "triangle is degenerate"));
                }
                let material = material_ref(&mut p, &materials)?;
                scene.add(Triangle::new(a, b, c), material);
            }
            other => {
                return Err(ParseSceneError::new(
                    line_no,
                    format!("unknown directive '{other}'"),
                ));
            }
        }
        p.finished()?;
    }

    let camera =
        camera.ok_or_else(|| ParseSceneError::new(text.lines().count(), "missing camera"))?;
    Ok(SceneDescription { scene, camera })
}

fn material_ref(
    p: &mut LineParser<'_>,
    materials: &HashMap<String, Material>,
) -> Result<Material, ParseSceneError> {
    p.keyword("material")?;
    let line = p.line;
    let name = p.word()?;
    materials
        .get(name)
        .copied()
        .ok_or_else(|| ParseSceneError::new(line, format!("undefined material '{name}'")))
}

/// Serializes a scene and camera parameters into the description
/// language. Materials are deduplicated and named `m0, m1, …`.
///
/// `camera_line` must be the parameters the camera was built with — the
/// [`Camera`] itself stores only derived vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraSpec {
    /// Eye position.
    pub eye: Vec3,
    /// Look-at target.
    pub target: Vec3,
    /// Up vector.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_deg: f64,
    /// Aspect ratio.
    pub aspect: f64,
}

impl CameraSpec {
    /// Builds the camera these parameters describe.
    pub fn build(&self) -> Camera {
        Camera::look_at(self.eye, self.target, self.up, self.fov_deg, self.aspect)
    }
}

/// Serializes `scene` plus `camera` into the description language.
pub fn serialize(scene: &Scene, camera: &CameraSpec) -> String {
    let mut out = String::new();
    let bg = scene.background();
    let am = scene.ambient();
    let _ = writeln!(
        out,
        "# scene description ({} primitives)",
        scene.primitive_count()
    );
    let _ = writeln!(out, "background {} {} {}", bg.r, bg.g, bg.b);
    let _ = writeln!(out, "ambient {} {} {}", am.r, am.g, am.b);
    let _ = writeln!(
        out,
        "camera eye {} {} {} target {} {} {} up {} {} {} fov {} aspect {}",
        camera.eye.x,
        camera.eye.y,
        camera.eye.z,
        camera.target.x,
        camera.target.y,
        camera.target.z,
        camera.up.x,
        camera.up.y,
        camera.up.z,
        camera.fov_deg,
        camera.aspect
    );
    for light in scene.lights() {
        let _ = writeln!(
            out,
            "light pos {} {} {} color {} {} {}",
            light.position.x,
            light.position.y,
            light.position.z,
            light.color.r,
            light.color.g,
            light.color.b
        );
    }

    // Deduplicate materials by bit pattern.
    let mut names: Vec<(Material, String)> = Vec::new();
    let mut name_of = |m: Material, out: &mut String| -> String {
        if let Some((_, n)) = names.iter().find(|(existing, _)| material_eq(existing, &m)) {
            return n.clone();
        }
        let n = format!("m{}", names.len());
        let mut line = format!(
            "material {n} color {} {} {} ambient {} diffuse {} specular {} shininess {} \
             reflect {} transparency {} ior {}",
            m.color.r,
            m.color.g,
            m.color.b,
            m.ambient,
            m.diffuse,
            m.specular,
            m.shininess,
            m.reflectivity,
            m.transparency,
            m.ior
        );
        if let Some(t) = &m.texture {
            let _ = write!(
                line,
                " checker {} {} {} {} {} {} {}",
                t.a.r, t.a.g, t.a.b, t.b.r, t.b.g, t.b.b, t.scale
            );
        }
        let _ = writeln!(out, "{line}");
        names.push((m, n.clone()));
        n
    };

    for obj in scene.objects() {
        let name = name_of(obj.material, &mut out);
        match obj.primitive {
            Primitive::Sphere(s) => {
                let c = s.center();
                let _ = writeln!(
                    out,
                    "sphere center {} {} {} radius {} material {name}",
                    c.x,
                    c.y,
                    c.z,
                    s.radius()
                );
            }
            Primitive::Plane(pl) => {
                let p = pl.point();
                let n = pl.normal();
                let _ = writeln!(
                    out,
                    "plane point {} {} {} normal {} {} {} material {name}",
                    p.x, p.y, p.z, n.x, n.y, n.z
                );
            }
            Primitive::Triangle(t) => {
                let (a, b, c) = t.vertices();
                let _ = writeln!(
                    out,
                    "triangle a {} {} {} b {} {} {} c {} {} {} material {name}",
                    a.x, a.y, a.z, b.x, b.y, b.z, c.x, c.y, c.z
                );
            }
        }
    }
    out
}

fn material_eq(a: &Material, b: &Material) -> bool {
    a.texture == b.texture
        && a.color == b.color
        && a.ambient == b.ambient
        && a.diffuse == b.diffuse
        && a.specular == b.specular
        && a.shininess == b.shininess
        && a.reflectivity == b.reflectivity
        && a.transparency == b.transparency
        && a.ior == b.ior
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{TraceConfig, Tracer};

    fn quickstart_spec() -> CameraSpec {
        CameraSpec {
            eye: Vec3::new(0.0, 1.0, 2.0),
            target: Vec3::new(0.0, 0.0, -6.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 55.0,
            aspect: 1.0,
        }
    }

    #[test]
    fn roundtrip_preserves_rendering() {
        let (scene, _camera) = crate::scenes::quickstart_scene();
        let spec = quickstart_spec();
        let text = serialize(&scene, &spec);
        let parsed = parse(&text).expect("serialized description parses");
        assert_eq!(parsed.scene.primitive_count(), scene.primitive_count());
        assert_eq!(parsed.scene.lights().len(), scene.lights().len());

        // Render both and compare pixels.
        let t1 = Tracer::new(&scene, TraceConfig::default());
        let t2 = Tracer::new(&parsed.scene, TraceConfig::default());
        let cam1 = spec.build();
        let cam2 = parsed.camera;
        for (px, py) in [(0u32, 0u32), (5, 9), (8, 8), (15, 3)] {
            let (a, _) = t1.render_pixel(&cam1, px, py, 16, 16, 1);
            let (b, _) = t2.render_pixel(&cam2, px, py, 16, 16, 1);
            assert_eq!(
                a.to_rgb8(),
                b.to_rgb8(),
                "pixel ({px},{py}) changed in round trip"
            );
        }
    }

    #[test]
    fn moderate_scene_roundtrips() {
        let (scene, _) = crate::scenes::moderate_scene();
        let spec = CameraSpec {
            eye: Vec3::new(0.0, 2.0, 2.0),
            target: Vec3::new(0.0, 0.0, -10.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 60.0,
            aspect: 1.0,
        };
        let text = serialize(&scene, &spec);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.scene.primitive_count(), 25);
        // Material dedup: the description should define far fewer
        // materials than primitives.
        let material_lines = text.lines().filter(|l| l.starts_with("material")).count();
        assert!(
            material_lines <= 6,
            "{material_lines} materials for 25 primitives"
        );
    }

    #[test]
    fn checker_texture_roundtrips() {
        let (scene, _) = crate::scenes::whitted_scene();
        let spec = CameraSpec {
            eye: Vec3::new(0.0, 0.8, 1.5),
            target: Vec3::new(0.0, 0.0, -5.5),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 52.0,
            aspect: 1.0,
        };
        let text = serialize(&scene, &spec);
        assert!(text.contains("checker"), "{text}");
        let parsed = parse(&text).unwrap();
        let floor = parsed.scene.objects()[0].material;
        assert!(floor.texture.is_some(), "checker floor lost in round trip");
        // Probe two squares.
        let t = Tracer::new(&parsed.scene, TraceConfig::default());
        let cam = spec.build();
        let (a, _) = t.render_pixel(&cam, 10, 30, 32, 32, 1);
        let (b, _) = t.render_pixel(&cam, 14, 30, 32, 32, 1);
        assert_ne!(a.to_rgb8(), b.to_rgb8());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "background 0 0 0\nwobble 1 2 3\n";
        let err = parse(bad).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("wobble"));

        let err = parse(
            "sphere center 0 0 0 radius 1 material nope\n\
                         camera eye 0 0 0 target 0 0 -1 up 0 1 0 fov 60 aspect 1\n",
        )
        .unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("undefined material"));
    }

    #[test]
    fn rejects_bad_values() {
        let with_camera =
            |body: &str| format!("camera eye 0 0 0 target 0 0 -1 up 0 1 0 fov 60 aspect 1\n{body}");
        assert!(parse(&with_camera("material m color 1 1 1 ambient 0.1 diffuse 1 specular 0 shininess 1 reflect 0 transparency 0 ior 1\nsphere center 0 0 0 radius -1 material m")).is_err());
        assert!(parse(&with_camera("background 0 0")).is_err());
        assert!(parse(&with_camera("ambient a b c")).is_err());
        assert!(parse("camera eye 0 0 0 target 0 0 -1 up 0 1 0 fov 200 aspect 1").is_err());
        assert!(parse("sphere trailing").is_err());
    }

    #[test]
    fn missing_camera_is_an_error() {
        let err = parse("background 0 0 0\n").unwrap_err();
        assert!(err.to_string().contains("missing camera"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# full line comment\ncamera eye 0 0 0 target 0 0 -1 up 0 1 0 fov 60 aspect 1 # trailing\n\n";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.scene.primitive_count(), 0);
    }

    #[test]
    fn description_length_scales_with_scene() {
        // The §4.1 premise: "scene descriptions are often very long".
        let spec = quickstart_spec();
        let small = serialize(&crate::scenes::quickstart_scene().0, &spec);
        let big = serialize(&crate::scenes::fractal_pyramid(3).0, &spec);
        assert!(
            big.len() > small.len() * 10,
            "{} vs {}",
            big.len(),
            small.len()
        );
    }
}
