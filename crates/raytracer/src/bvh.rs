//! Bounding-volume hierarchy over parallelepipeds.
//!
//! This implements the paper's stated future work: "a hierarchical
//! bounding volume scheme based on parallelopipeds". Bounded primitives
//! are organized in a binary tree of [`Aabb`]s built by median split on
//! the widest centroid axis; traversal visits only subtrees whose boxes
//! the ray enters. Unbounded primitives (planes) cannot be boxed and are
//! handled linearly by the caller.

use crate::geometry::{Aabb, Hit, Intersect};
use crate::math::Ray;
use crate::scene::Scene;
use crate::work::WorkCounters;

/// Maximum primitives per leaf.
const LEAF_SIZE: usize = 4;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bounds: Aabb,
        /// Indices into the scene's object list.
        objects: Vec<usize>,
    },
    Inner {
        bounds: Aabb,
        left: usize,
        right: usize,
    },
}

impl Node {
    fn bounds(&self) -> &Aabb {
        match self {
            Node::Leaf { bounds, .. } | Node::Inner { bounds, .. } => bounds,
        }
    }
}

/// A BVH over a scene's bounded objects.
///
/// # Examples
///
/// ```
/// use raytracer::bvh::Bvh;
/// use raytracer::color::Color;
/// use raytracer::geometry::Sphere;
/// use raytracer::material::Material;
/// use raytracer::math::{Ray, Vec3};
/// use raytracer::scene::Scene;
/// use raytracer::work::WorkCounters;
///
/// let mut scene = Scene::new(Color::BLACK);
/// for i in 0..8 {
///     scene.add(
///         Sphere::new(Vec3::new(i as f64 * 3.0, 0.0, -10.0), 1.0),
///         Material::default(),
///     );
/// }
/// let bvh = Bvh::build(&scene);
/// let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
/// let mut work = WorkCounters::new();
/// let hit = bvh.closest_hit(&scene, &ray, f64::INFINITY, &mut work).unwrap();
/// assert_eq!(hit.0, 0); // the sphere at x = 0
/// ```
#[derive(Debug, Clone)]
pub struct Bvh {
    nodes: Vec<Node>,
    root: Option<usize>,
}

impl Bvh {
    /// Builds a BVH over the scene's bounded objects. Scenes with no
    /// bounded objects produce an empty (always-miss) hierarchy.
    pub fn build(scene: &Scene) -> Self {
        let mut items: Vec<(usize, Aabb)> = scene
            .bounded_indices()
            .into_iter()
            .map(|i| (i, scene.objects()[i].primitive.bounds()))
            .collect();
        let mut bvh = Bvh {
            nodes: Vec::new(),
            root: None,
        };
        if !items.is_empty() {
            let root = bvh.build_node(&mut items);
            bvh.root = Some(root);
        }
        bvh
    }

    fn build_node(&mut self, items: &mut [(usize, Aabb)]) -> usize {
        let bounds = items.iter().fold(Aabb::empty(), |acc, (_, b)| acc.union(b));
        if items.len() <= LEAF_SIZE {
            self.nodes.push(Node::Leaf {
                bounds,
                objects: items.iter().map(|&(i, _)| i).collect(),
            });
            return self.nodes.len() - 1;
        }
        // Median split on the widest centroid axis.
        let centroid_bounds = items.iter().fold(Aabb::empty(), |mut acc, (_, b)| {
            acc.expand(b.centroid());
            acc
        });
        let axis = centroid_bounds.extent().max_axis();
        items.sort_by(|(_, a), (_, b)| {
            a.centroid()
                .axis(axis)
                .partial_cmp(&b.centroid().axis(axis))
                .expect("finite centroids")
        });
        let mid = items.len() / 2;
        let (lo, hi) = items.split_at_mut(mid);
        let left = self.build_node(lo);
        let right = self.build_node(hi);
        self.nodes.push(Node::Inner {
            bounds,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the hierarchy contains no objects.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Closest hit among the hierarchy's objects with `t < t_max`.
    /// Returns `(object index, hit)`.
    pub fn closest_hit(
        &self,
        scene: &Scene,
        ray: &Ray,
        mut t_max: f64,
        work: &mut WorkCounters,
    ) -> Option<(usize, Hit)> {
        let mut best: Option<(usize, Hit)> = None;
        let root = self.root?;
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            work.bvh_visits += 1;
            let node = &self.nodes[idx];
            if !node.bounds().hit_by(ray, t_max) {
                continue;
            }
            match node {
                Node::Leaf { objects, .. } => {
                    for &obj in objects {
                        work.scalar_tests += 1;
                        if let Some(hit) = scene.objects()[obj].primitive.intersect(ray, t_max) {
                            t_max = hit.t;
                            best = Some((obj, hit));
                        }
                    }
                }
                Node::Inner { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        best
    }

    /// Returns `true` if anything in the hierarchy blocks the ray before
    /// `t_max` (early-out occlusion query for shadows).
    pub fn occluded(&self, scene: &Scene, ray: &Ray, t_max: f64, work: &mut WorkCounters) -> bool {
        let Some(root) = self.root else { return false };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            work.bvh_visits += 1;
            let node = &self.nodes[idx];
            if !node.bounds().hit_by(ray, t_max) {
                continue;
            }
            match node {
                Node::Leaf { objects, .. } => {
                    for &obj in objects {
                        work.scalar_tests += 1;
                        if scene.objects()[obj]
                            .primitive
                            .intersect(ray, t_max)
                            .is_some()
                        {
                            return true;
                        }
                    }
                }
                Node::Inner { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;
    use crate::geometry::Sphere;
    use crate::material::Material;
    use crate::math::Vec3;
    use proptest::prelude::*;

    fn grid_scene(n: usize) -> Scene {
        let mut scene = Scene::new(Color::BLACK);
        for i in 0..n {
            let x = (i % 10) as f64 * 3.0;
            let y = (i / 10) as f64 * 3.0;
            scene.add(
                Sphere::new(Vec3::new(x, y, -20.0), 1.0),
                Material::default(),
            );
        }
        scene
    }

    /// Reference: test every bounded object linearly.
    fn brute_closest(scene: &Scene, ray: &Ray) -> Option<(usize, Hit)> {
        let mut best: Option<(usize, Hit)> = None;
        let mut t_max = f64::INFINITY;
        for i in scene.bounded_indices() {
            if let Some(h) = scene.objects()[i].primitive.intersect(ray, t_max) {
                t_max = h.t;
                best = Some((i, h));
            }
        }
        best
    }

    #[test]
    fn empty_scene_is_empty_bvh() {
        let scene = Scene::new(Color::BLACK);
        let bvh = Bvh::build(&scene);
        assert!(bvh.is_empty());
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let mut w = WorkCounters::new();
        assert!(bvh
            .closest_hit(&scene, &ray, f64::INFINITY, &mut w)
            .is_none());
        assert!(!bvh.occluded(&scene, &ray, f64::INFINITY, &mut w));
    }

    #[test]
    fn bvh_prunes_tests() {
        let scene = grid_scene(100);
        let bvh = Bvh::build(&scene);
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let mut w = WorkCounters::new();
        bvh.closest_hit(&scene, &ray, f64::INFINITY, &mut w);
        assert!(
            w.scalar_tests < 100 / 2,
            "BVH tested {} of 100 primitives — no pruning",
            w.scalar_tests
        );
    }

    #[test]
    fn occlusion_early_out() {
        let scene = grid_scene(100);
        let bvh = Bvh::build(&scene);
        // Shadow ray straight into the first sphere.
        let ray = Ray::new(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.0, 0.0, -1.0));
        let mut w = WorkCounters::new();
        assert!(bvh.occluded(&scene, &ray, f64::INFINITY, &mut w));
        assert!(
            w.scalar_tests <= LEAF_SIZE as u64 * 4,
            "occlusion should stop early"
        );
    }

    proptest! {
        /// BVH and brute force agree on the closest hit for random rays.
        #[test]
        fn bvh_equals_brute_force(
            ox in -5.0f64..35.0, oy in -5.0f64..35.0,
            tx in -5.0f64..35.0, ty in -5.0f64..35.0,
        ) {
            let scene = grid_scene(60);
            let bvh = Bvh::build(&scene);
            let origin = Vec3::new(ox, oy, 5.0);
            let target = Vec3::new(tx, ty, -20.0);
            let ray = Ray::new(origin, target - origin);
            let mut w = WorkCounters::new();
            let fast = bvh.closest_hit(&scene, &ray, f64::INFINITY, &mut w);
            let slow = brute_closest(&scene, &ray);
            match (fast, slow) {
                (None, None) => {}
                (Some((i, h1)), Some((j, h2))) => {
                    prop_assert_eq!(i, j);
                    prop_assert!((h1.t - h2.t).abs() < 1e-9);
                }
                other => prop_assert!(false, "mismatch: {:?}", other),
            }
        }
    }
}
