//! Framebuffer and PPM output — the "output picture file" the master
//! writes pixel stretches into.

use crate::color::Color;

/// A width × height image of linear colours.
///
/// # Examples
///
/// ```
/// use raytracer::color::Color;
/// use raytracer::image::Framebuffer;
///
/// let mut fb = Framebuffer::new(4, 2);
/// fb.set(0, 0, Color::WHITE);
/// assert_eq!(fb.get(0, 0), Color::WHITE);
/// let ppm = fb.to_ppm();
/// assert!(ppm.starts_with(b"P6\n4 2\n255\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<Color>,
}

/// The empty 0×0 image — the placeholder left behind when a finished
/// run's framebuffer is moved out of a still-shared handle. It holds no
/// pixels, so every accessor except [`Framebuffer::set`]/
/// [`Framebuffer::get`] (which panic out of bounds) is well-defined.
impl Default for Framebuffer {
    fn default() -> Self {
        Framebuffer {
            width: 0,
            height: 0,
            pixels: Vec::new(),
        }
    }
}

impl Framebuffer {
    /// Creates a black framebuffer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(
            width > 0 && height > 0,
            "framebuffer dimensions must be nonzero"
        );
        Framebuffer {
            width,
            height,
            pixels: vec![Color::BLACK; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> u32 {
        self.width * self.height
    }

    fn index(&self, x: u32, y: u32) -> usize {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        (y * self.width + x) as usize
    }

    /// Sets a pixel.
    pub fn set(&mut self, x: u32, y: u32, color: Color) {
        let i = self.index(x, y);
        self.pixels[i] = color;
    }

    /// Sets a pixel by row-major linear index (how jobs address pixels).
    pub fn set_linear(&mut self, index: u32, color: Color) {
        assert!(
            index < self.pixel_count(),
            "linear index {index} out of bounds"
        );
        self.pixels[index as usize] = color;
    }

    /// Reads a pixel.
    pub fn get(&self, x: u32, y: u32) -> Color {
        self.pixels[self.index(x, y)]
    }

    /// Mean luminance over the image — a cheap scene-independent checksum
    /// for comparing renders.
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|c| c.luminance()).sum::<f64>() / self.pixels.len() as f64
    }

    /// Serializes to binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for c in &self.pixels {
            let (r, g, b) = c.to_rgb8();
            out.extend_from_slice(&[r, g, b]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_and_xy_agree() {
        let mut fb = Framebuffer::new(3, 2);
        fb.set_linear(4, Color::WHITE); // row 1, col 1
        assert_eq!(fb.get(1, 1), Color::WHITE);
        assert_eq!(fb.get(0, 0), Color::BLACK);
    }

    #[test]
    fn ppm_size() {
        let fb = Framebuffer::new(10, 5);
        let ppm = fb.to_ppm();
        let header_len = b"P6\n10 5\n255\n".len();
        assert_eq!(ppm.len(), header_len + 10 * 5 * 3);
    }

    #[test]
    fn mean_luminance_tracks_content() {
        let mut fb = Framebuffer::new(2, 1);
        assert_eq!(fb.mean_luminance(), 0.0);
        fb.set(0, 0, Color::WHITE);
        fb.set(1, 0, Color::WHITE);
        assert!((fb.mean_luminance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        Framebuffer::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_panics() {
        Framebuffer::new(0, 4);
    }
}
