//! The paper's test scenes.
//!
//! * [`moderate_scene`] — "a scene of moderate complexity (the scene
//!   contained 25 primitive objects)": the workload of Figures 7–10.
//! * [`fractal_pyramid`] — "a more complex scene comprising more than 250
//!   primitives (a fractal pyramid)": the workload that reaches >99 %
//!   servant utilization.
//! * [`quickstart_scene`] — a tiny scene for examples and fast tests.

use crate::camera::Camera;
use crate::color::Color;
use crate::geometry::{Plane, Sphere, Triangle};
use crate::material::{Light, Material};
use crate::math::Vec3;
use crate::scene::Scene;

/// A small three-sphere scene for examples (4 primitives).
pub fn quickstart_scene() -> (Scene, Camera) {
    let mut scene = Scene::new(Color::new(0.25, 0.35, 0.55));
    scene.add(
        Plane::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        Material::shiny(Color::grey(0.6), 0.25),
    );
    scene.add(
        Sphere::new(Vec3::new(-2.0, 0.0, -6.0), 1.0),
        Material::matte(Color::new(0.9, 0.2, 0.2)),
    );
    scene.add(
        Sphere::new(Vec3::new(0.0, 0.0, -7.5), 1.0),
        Material::mirror(),
    );
    scene.add(
        Sphere::new(Vec3::new(2.0, 0.0, -6.0), 1.0),
        Material::glass(1.5),
    );
    scene.add_light(Light {
        position: Vec3::new(5.0, 8.0, 0.0),
        color: Color::WHITE,
    });
    let camera = Camera::look_at(
        Vec3::new(0.0, 1.0, 2.0),
        Vec3::new(0.0, 0.0, -6.0),
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        1.0,
    );
    (scene, camera)
}

/// The 25-primitive moderate scene: a reflective floor, a ring of shiny
/// and glass spheres, and a small triangle-fan "tent".
pub fn moderate_scene() -> (Scene, Camera) {
    let mut scene = Scene::new(Color::new(0.2, 0.3, 0.5));
    scene.set_ambient(Color::grey(0.8));

    // 1 floor plane.
    scene.add(
        Plane::new(Vec3::new(0.0, -1.5, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        Material::shiny(Color::grey(0.55), 0.3),
    );

    // 12 spheres in a ring, alternating materials.
    for i in 0..12u32 {
        let angle = i as f64 / 12.0 * std::f64::consts::TAU;
        let pos = Vec3::new(4.0 * angle.cos(), -0.5, -10.0 + 4.0 * angle.sin());
        let material = match i % 3 {
            0 => Material::matte(Color::new(0.85, 0.25, 0.2)),
            1 => Material::shiny(Color::new(0.2, 0.5, 0.85), 0.4),
            _ => Material::glass(1.5),
        };
        scene.add(Sphere::new(pos, 0.9), material);
    }

    // 12 triangles forming a tent/pyramid fan in the middle.
    let apex = Vec3::new(0.0, 2.5, -10.0);
    for i in 0..12u32 {
        let a0 = i as f64 / 12.0 * std::f64::consts::TAU;
        let a1 = (i + 1) as f64 / 12.0 * std::f64::consts::TAU;
        let b0 = Vec3::new(2.0 * a0.cos(), -1.0, -10.0 + 2.0 * a0.sin());
        let b1 = Vec3::new(2.0 * a1.cos(), -1.0, -10.0 + 2.0 * a1.sin());
        scene.add(
            Triangle::new(apex, b0, b1),
            Material::shiny(Color::new(0.9, 0.75, 0.3), 0.2),
        );
    }

    scene.add_light(Light {
        position: Vec3::new(8.0, 10.0, 2.0),
        color: Color::grey(0.9),
    });
    scene.add_light(Light {
        position: Vec3::new(-7.0, 6.0, -2.0),
        color: Color::grey(0.5),
    });

    let camera = Camera::look_at(
        Vec3::new(0.0, 2.0, 2.0),
        Vec3::new(0.0, 0.0, -10.0),
        Vec3::new(0.0, 1.0, 0.0),
        60.0,
        1.0,
    );
    (scene, camera)
}

/// An homage to Whitted's 1980 cover image: a glass sphere and a
/// reflective sphere floating over a checkerboard floor (6 primitives).
pub fn whitted_scene() -> (Scene, Camera) {
    let mut scene = Scene::new(Color::new(0.35, 0.45, 0.65));
    scene.set_ambient(Color::grey(0.9));
    scene.add(
        Plane::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        Material::checker(Color::new(0.9, 0.8, 0.3), Color::new(0.8, 0.15, 0.1), 1.5),
    );
    scene.add(
        Sphere::new(Vec3::new(-0.9, 0.6, -5.0), 1.0),
        Material::glass(1.5),
    );
    scene.add(
        Sphere::new(Vec3::new(1.1, 0.2, -6.5), 0.9),
        Material::mirror(),
    );
    // A few background spheres to give the reflections something to see.
    scene.add(
        Sphere::new(Vec3::new(-3.0, 0.0, -8.0), 0.8),
        Material::matte(Color::new(0.2, 0.6, 0.3)),
    );
    scene.add(
        Sphere::new(Vec3::new(3.2, -0.2, -8.5), 0.7),
        Material::shiny(Color::new(0.3, 0.3, 0.8), 0.3),
    );
    scene.add(
        Sphere::new(Vec3::new(0.3, -0.5, -3.4), 0.4),
        Material::matte(Color::new(0.9, 0.6, 0.2)),
    );
    scene.add_light(Light {
        position: Vec3::new(4.0, 6.0, 1.0),
        color: Color::grey(0.95),
    });
    scene.add_light(Light {
        position: Vec3::new(-5.0, 4.0, 0.5),
        color: Color::grey(0.4),
    });
    let camera = Camera::look_at(
        Vec3::new(0.0, 0.8, 1.5),
        Vec3::new(0.0, 0.0, -5.5),
        Vec3::new(0.0, 1.0, 0.0),
        52.0,
        1.0,
    );
    (scene, camera)
}

/// The complex scene: a Sierpinski-style fractal pyramid of `4^depth`
/// tetrahedra (4 triangles each) above a reflective floor.
///
/// `fractal_pyramid(3)` yields 257 primitives — the paper's "more than
/// 250 primitives".
///
/// # Panics
///
/// Panics if `depth > 6` (primitive count would explode).
pub fn fractal_pyramid(depth: u32) -> (Scene, Camera) {
    assert!(
        depth <= 6,
        "fractal depth {depth} would generate too many primitives"
    );
    let mut scene = Scene::new(Color::new(0.15, 0.2, 0.35));
    scene.set_ambient(Color::grey(0.7));

    scene.add(
        Plane::new(Vec3::new(0.0, -2.2, 0.0), Vec3::new(0.0, 1.0, 0.0)),
        Material::shiny(Color::grey(0.5), 0.35),
    );

    // Regular tetrahedron vertices.
    let scale = 3.0;
    let center = Vec3::new(0.0, 0.2, -10.0);
    let verts = [
        center + Vec3::new(1.0, 1.0, 1.0) * scale * 0.578,
        center + Vec3::new(1.0, -1.0, -1.0) * scale * 0.578,
        center + Vec3::new(-1.0, 1.0, -1.0) * scale * 0.578,
        center + Vec3::new(-1.0, -1.0, 1.0) * scale * 0.578,
    ];
    let material = Material::shiny(Color::new(0.8, 0.6, 0.25), 0.25);
    emit_sierpinski(&mut scene, verts, depth, material);

    scene.add_light(Light {
        position: Vec3::new(8.0, 12.0, 0.0),
        color: Color::grey(0.95),
    });
    scene.add_light(Light {
        position: Vec3::new(-6.0, 8.0, -4.0),
        color: Color::grey(0.45),
    });

    let camera = Camera::look_at(
        Vec3::new(0.0, 2.5, 0.0),
        center,
        Vec3::new(0.0, 1.0, 0.0),
        55.0,
        1.0,
    );
    (scene, camera)
}

fn emit_sierpinski(scene: &mut Scene, v: [Vec3; 4], depth: u32, material: Material) {
    if depth == 0 {
        scene.add(Triangle::new(v[0], v[1], v[2]), material);
        scene.add(Triangle::new(v[0], v[1], v[3]), material);
        scene.add(Triangle::new(v[0], v[2], v[3]), material);
        scene.add(Triangle::new(v[1], v[2], v[3]), material);
        return;
    }
    let mid = |a: Vec3, b: Vec3| (a + b) * 0.5;
    for corner in 0..4 {
        let mut sub = [Vec3::ZERO; 4];
        for (j, slot) in sub.iter_mut().enumerate() {
            *slot = if j == corner {
                v[corner]
            } else {
                mid(v[corner], v[j])
            };
        }
        emit_sierpinski(scene, sub, depth - 1, material);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{TraceConfig, Tracer};
    use crate::work::WorkCounters;

    #[test]
    fn moderate_scene_has_exactly_25_primitives() {
        let (scene, _) = moderate_scene();
        assert_eq!(
            scene.primitive_count(),
            25,
            "the paper's moderate scene has 25 primitives"
        );
        assert_eq!(scene.lights().len(), 2);
    }

    #[test]
    fn fractal_pyramid_exceeds_250_primitives() {
        let (scene, _) = fractal_pyramid(3);
        // 4^3 tetrahedra x 4 faces + floor = 257.
        assert_eq!(scene.primitive_count(), 257);
        assert!(
            scene.primitive_count() > 250,
            "the paper's complex scene has >250 primitives"
        );
    }

    #[test]
    fn fractal_depth_scaling() {
        assert_eq!(fractal_pyramid(0).0.primitive_count(), 5);
        assert_eq!(fractal_pyramid(1).0.primitive_count(), 17);
        assert_eq!(fractal_pyramid(2).0.primitive_count(), 65);
    }

    #[test]
    fn whitted_scene_shows_the_checkerboard() {
        let (scene, camera) = whitted_scene();
        assert_eq!(scene.primitive_count(), 6);
        let tracer = Tracer::new(&scene, TraceConfig::default());
        // Two floor probes a square apart must differ (the checker).
        let (a, _) = tracer.render_pixel(&camera, 10, 30, 32, 32, 1);
        let (b, _) = tracer.render_pixel(&camera, 14, 30, 32, 32, 1);
        assert_ne!(
            a.to_rgb8(),
            b.to_rgb8(),
            "floor probes {a:?} vs {b:?} look identical"
        );
    }

    #[test]
    fn scenes_render_nontrivially() {
        for (scene, camera) in [quickstart_scene(), moderate_scene(), fractal_pyramid(2)] {
            let tracer = Tracer::new(&scene, TraceConfig::default());
            let mut hits = 0;
            let mut lum = 0.0;
            for (px, py) in [(8, 8), (16, 20), (24, 12), (16, 28)] {
                let (c, w) = tracer.render_pixel(&camera, px, py, 32, 32, 1);
                lum += c.luminance();
                if w.shadings > 0 {
                    hits += 1;
                }
            }
            assert!(hits >= 2, "camera should see the scene ({hits} probe hits)");
            assert!(lum > 0.05, "render too dark");
        }
    }

    #[test]
    fn complex_scene_rays_cost_more_than_moderate() {
        let (m_scene, m_cam) = moderate_scene();
        let (f_scene, f_cam) = fractal_pyramid(3);
        let mt = Tracer::new(&m_scene, TraceConfig::default());
        let ft = Tracer::new(&f_scene, TraceConfig::default());
        let mut m_work = WorkCounters::new();
        let mut f_work = WorkCounters::new();
        for py in 0..16 {
            for px in 0..16 {
                m_work += mt.render_pixel(&m_cam, px, py, 16, 16, 1).1;
                f_work += ft.render_pixel(&f_cam, px, py, 16, 16, 1).1;
            }
        }
        assert!(
            f_work.scalar_tests > m_work.scalar_tests * 4,
            "complex scene should do much more intersection work ({} vs {})",
            f_work.scalar_tests,
            m_work.scalar_tests
        );
    }
}
