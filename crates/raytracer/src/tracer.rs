//! Whitted-style recursive ray tracing.
//!
//! The colour of an eye ray combines the object's own (lit) colour, the
//! colour of a recursively traced reflected ray and the colour of a
//! recursively traced transmitted ray (paper §4.1, after Whitted \[15\]).

use crate::camera::Camera;
use crate::color::Color;
use crate::geometry::Hit;
use crate::intersect::{Accel, SceneIndex, VectorMode};
use crate::material::Material;
use crate::math::Ray;
use crate::sampling::oversample_offsets;
use crate::scene::Scene;
use crate::work::WorkCounters;

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum recursion depth for reflection/refraction.
    pub max_depth: u32,
    /// Acceleration structure.
    pub accel: Accel,
    /// Scalar or vectorized intersection tests.
    pub vector_mode: VectorMode,
    /// Whether to cast shadow rays.
    pub shadows: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_depth: 5,
            accel: Accel::BruteForce,
            vector_mode: VectorMode::Scalar,
            shadows: true,
        }
    }
}

/// A ray tracer bound to a scene.
///
/// # Examples
///
/// ```
/// use raytracer::scenes;
/// use raytracer::tracer::{TraceConfig, Tracer};
///
/// let (scene, camera) = scenes::quickstart_scene();
/// let tracer = Tracer::new(&scene, TraceConfig::default());
/// let (color, work) = tracer.render_pixel(&camera, 32, 32, 64, 64, 1);
/// assert!(work.rays >= 1);
/// assert!(color.luminance() >= 0.0);
/// ```
#[derive(Debug)]
pub struct Tracer<'a> {
    index: SceneIndex<'a>,
    cfg: TraceConfig,
}

impl<'a> Tracer<'a> {
    /// Prepares a tracer (builds the acceleration structure if any).
    pub fn new(scene: &'a Scene, cfg: TraceConfig) -> Self {
        Tracer {
            index: SceneIndex::build(scene, cfg.accel, cfg.vector_mode),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// The scene being rendered.
    pub fn scene(&self) -> &Scene {
        self.index.scene()
    }

    /// Traces one ray to its colour, accumulating work counters.
    pub fn trace(&self, ray: &Ray, work: &mut WorkCounters) -> Color {
        self.trace_depth(ray, 0, work)
    }

    fn trace_depth(&self, ray: &Ray, depth: u32, work: &mut WorkCounters) -> Color {
        work.rays += 1;
        let Some((obj_idx, hit)) = self.index.closest_hit(ray, work) else {
            return self.scene().background();
        };
        let material = self.scene().objects()[obj_idx].material;
        let mut color = self.shade_local(ray, &hit, &material, work);

        if depth < self.cfg.max_depth {
            if material.reflectivity > 0.0 {
                work.reflections += 1;
                let reflected = Ray::new(hit.point, ray.dir.reflect(hit.normal));
                color += self.trace_depth(&reflected, depth + 1, work) * material.reflectivity;
            }
            if material.transparency > 0.0 {
                // The reported normal faces the incoming ray, so entering
                // vs. leaving is distinguished by the original geometric
                // orientation; eta uses the material's IOR either way
                // (sufficient for thin shells and solid glass alike).
                let eta = 1.0 / material.ior;
                match ray.dir.refract(hit.normal, eta) {
                    Some(transmitted) => {
                        work.refractions += 1;
                        let t_ray = Ray::new(hit.point, transmitted);
                        color += self.trace_depth(&t_ray, depth + 1, work) * material.transparency;
                    }
                    None => {
                        // Total internal reflection feeds the mirror term.
                        work.reflections += 1;
                        let reflected = Ray::new(hit.point, ray.dir.reflect(hit.normal));
                        color +=
                            self.trace_depth(&reflected, depth + 1, work) * material.transparency;
                    }
                }
            }
        }
        color
    }

    /// Ambient + Phong diffuse/specular with shadow tests.
    fn shade_local(
        &self,
        ray: &Ray,
        hit: &Hit,
        material: &Material,
        work: &mut WorkCounters,
    ) -> Color {
        work.shadings += 1;
        let surface = material.color_at(hit.point);
        let mut color = self.scene().ambient().modulate(surface) * material.ambient;
        for light in self.scene().lights() {
            let to_light = light.position - hit.point;
            let distance = to_light.length();
            let l_dir = to_light / distance;
            if self.cfg.shadows {
                let shadow_ray = Ray {
                    origin: hit.point,
                    dir: l_dir,
                };
                work.rays += 1;
                if self.index.occluded(&shadow_ray, distance, work) {
                    continue;
                }
            }
            let n_dot_l = hit.normal.dot(l_dir).max(0.0);
            if n_dot_l > 0.0 {
                color += light.color.modulate(surface) * (material.diffuse * n_dot_l);
                if material.specular > 0.0 {
                    let h = (l_dir - ray.dir).normalized();
                    let spec = hit.normal.dot(h).max(0.0).powf(material.shininess);
                    color += light.color * (material.specular * spec);
                }
            }
        }
        color
    }

    /// Renders one pixel with `oversample`×`oversample` stratified
    /// sub-pixel rays (the master's oversampling scheme, paper §4.2) and
    /// returns the averaged colour plus the work done.
    ///
    /// # Panics
    ///
    /// Panics if `oversample` is zero.
    pub fn render_pixel(
        &self,
        camera: &Camera,
        px: u32,
        py: u32,
        width: u32,
        height: u32,
        oversample: u32,
    ) -> (Color, WorkCounters) {
        let offsets = oversample_offsets(oversample);
        let mut work = WorkCounters::new();
        let mut acc = Color::BLACK;
        for &offset in &offsets {
            let ray = camera.ray_for(px, py, width, height, offset);
            acc += self.trace(&ray, &mut work);
        }
        (acc * (1.0 / offsets.len() as f64), work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Plane, Sphere};
    use crate::material::Light;
    use crate::math::Vec3;
    use crate::scene::Scene;

    fn lit_sphere_scene() -> Scene {
        let mut s = Scene::new(Color::grey(0.1));
        s.add(
            Sphere::new(Vec3::new(0.0, 0.0, -5.0), 1.0),
            Material::matte(Color::WHITE),
        );
        s.add_light(Light {
            position: Vec3::new(0.0, 5.0, 0.0),
            color: Color::WHITE,
        });
        s
    }

    #[test]
    fn miss_returns_background() {
        let s = lit_sphere_scene();
        let t = Tracer::new(&s, TraceConfig::default());
        let mut w = WorkCounters::new();
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(t.trace(&ray, &mut w), Color::grey(0.1));
        assert_eq!(w.shadings, 0);
        assert_eq!(w.rays, 1);
    }

    #[test]
    fn lit_side_brighter_than_ambient() {
        let s = lit_sphere_scene();
        let t = Tracer::new(&s, TraceConfig::default());
        let mut w = WorkCounters::new();
        // Hit the top of the sphere (facing the light).
        let ray = Ray::new(Vec3::new(0.0, 3.0, -5.0), Vec3::new(0.0, -1.0, 0.0));
        let c = t.trace(&ray, &mut w);
        assert!(c.luminance() > 0.3, "lit surface too dark: {c:?}");
        assert_eq!(w.shadings, 1);
    }

    #[test]
    fn shadowed_point_gets_only_ambient() {
        let mut s = Scene::new(Color::BLACK);
        s.add(
            Plane::new(Vec3::new(0.0, -1.0, 0.0), Vec3::new(0.0, 1.0, 0.0)),
            Material::matte(Color::WHITE),
        );
        // Blocker between light and the shading point.
        s.add(
            Sphere::new(Vec3::new(0.0, 2.0, -5.0), 1.0),
            Material::matte(Color::WHITE),
        );
        s.add_light(Light {
            position: Vec3::new(0.0, 6.0, -5.0),
            color: Color::WHITE,
        });
        let t = Tracer::new(&s, TraceConfig::default());
        let mut w = WorkCounters::new();
        // Straight down at the point right below the blocker.
        let ray = Ray::new(Vec3::new(0.0, 0.5, -5.0), Vec3::new(0.0, -1.0, 0.0));
        let shadowed = t.trace(&ray, &mut w);
        // Same geometry but shadows disabled: much brighter.
        let t2 = Tracer::new(
            &s,
            TraceConfig {
                shadows: false,
                ..TraceConfig::default()
            },
        );
        let unshadowed = t2.trace(&ray, &mut WorkCounters::new());
        assert!(shadowed.luminance() < unshadowed.luminance() * 0.5);
        assert!(w.shadow_queries >= 1);
    }

    #[test]
    fn mirror_reflects_scene() {
        let mut s = Scene::new(Color::new(0.0, 0.0, 1.0)); // blue background
        s.add(
            Plane::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)),
            Material::mirror(),
        );
        let t = Tracer::new(&s, TraceConfig::default());
        let mut w = WorkCounters::new();
        let ray = Ray::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.2, -1.0, 0.0));
        let c = t.trace(&ray, &mut w);
        assert!(c.b > 0.5, "mirror floor should reflect the blue sky: {c:?}");
        assert_eq!(w.reflections, 1);
    }

    #[test]
    fn recursion_depth_is_bounded() {
        // Two facing mirrors: an infinite bounce corridor.
        let mut s = Scene::new(Color::BLACK);
        s.add(
            Plane::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0)),
            Material::mirror(),
        );
        s.add(
            Plane::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(0.0, 0.0, -1.0)),
            Material::mirror(),
        );
        let t = Tracer::new(
            &s,
            TraceConfig {
                max_depth: 7,
                ..TraceConfig::default()
            },
        );
        let mut w = WorkCounters::new();
        t.trace(&Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0)), &mut w);
        assert_eq!(w.reflections, 7);
    }

    #[test]
    fn glass_spawns_refraction() {
        let mut s = lit_sphere_scene();
        s.add(
            Sphere::new(Vec3::new(0.0, 0.0, -2.0), 0.5),
            Material::glass(1.5),
        );
        let t = Tracer::new(&s, TraceConfig::default());
        let mut w = WorkCounters::new();
        t.trace(&Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0)), &mut w);
        assert!(w.refractions >= 1);
    }

    #[test]
    fn oversampling_multiplies_work() {
        let (scene, camera) = crate::scenes::quickstart_scene();
        let t = Tracer::new(&scene, TraceConfig::default());
        let (_, w1) = t.render_pixel(&camera, 32, 32, 64, 64, 1);
        let (_, w3) = t.render_pixel(&camera, 32, 32, 64, 64, 3);
        assert!(
            w3.rays >= w1.rays * 9,
            "3x3 oversampling should cast 9x the rays"
        );
    }
}
