//! A complete Whitted-style ray tracer with work accounting.
//!
//! This crate is the application substrate of the reproduction: the ray
//! tracer the paper parallelizes on SUPRENUM (§4). It is a full
//! sequential renderer — spheres, planes and triangles; point lights with
//! shadows; recursive reflection and refraction; stratified oversampling —
//! plus the two pieces the parallel simulation needs:
//!
//! * **work counters** ([`work::WorkCounters`]): every traced ray reports
//!   how many intersection tests, BVH visits, shadings and secondary rays
//!   it actually required, so the simulated MC68020 servant time
//!   ([`cost::CostModel`]) inherits the *real* per-ray variance that
//!   motivates dynamic ray partitioning;
//! * the paper's **future-work extensions**, used as ablations: a
//!   bounding-volume hierarchy over parallelepipeds ([`bvh`]) and
//!   batched "VFPU" intersection tests ([`intersect::VectorMode`]).
//!
//! # Examples
//!
//! Render a small image:
//!
//! ```
//! use raytracer::image::Framebuffer;
//! use raytracer::scenes;
//! use raytracer::tracer::{TraceConfig, Tracer};
//!
//! let (scene, camera) = scenes::quickstart_scene();
//! let tracer = Tracer::new(&scene, TraceConfig::default());
//! let mut fb = Framebuffer::new(16, 16);
//! for y in 0..16 {
//!     for x in 0..16 {
//!         let (color, _work) = tracer.render_pixel(&camera, x, y, 16, 16, 1);
//!         fb.set(x, y, color);
//!     }
//! }
//! assert!(fb.mean_luminance() > 0.05);
//! ```

pub mod bvh;
pub mod camera;
pub mod color;
pub mod cost;
pub mod geometry;
pub mod image;
pub mod intersect;
pub mod material;
pub mod math;
pub mod sampling;
pub mod scene;
pub mod scenes;
pub mod sdl;
pub mod tracer;
pub mod work;

pub use camera::Camera;
pub use color::Color;
pub use cost::CostModel;
pub use image::Framebuffer;
pub use intersect::{Accel, VectorMode};
pub use material::{Light, Material};
pub use math::{Ray, Vec3};
pub use scene::Scene;
pub use tracer::{TraceConfig, Tracer};
pub use work::WorkCounters;
