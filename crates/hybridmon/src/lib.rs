//! Hybrid-monitoring instrumentation layer.
//!
//! This crate implements the paper's central contribution: the protocol by
//! which an instrumented program running on a SUPRENUM node emits 48-bit
//! measurement events through the node's *seven-segment display* socket to
//! an external hardware monitor.
//!
//! The instrumentation call is
//!
//! ```text
//! hybrid_mon(p1, p2)
//! ```
//!
//! where `p1` is a 16-bit [`EventToken`] identifying the event and `p2` a
//! 32-bit [`EventParam`] carrying additional data (a job id, a pixel
//! index, …). The display can show only 16 distinct patterns, so the 48
//! bits are serialized as 16 pairs
//!
//! ```text
//! T m0  T m1  ...  T m15
//! ```
//!
//! where `T` is a reserved *triggerword* pattern and each `mᵢ` encodes
//! 3 bits of the payload ([`encode::encode`]). The external event detector
//! reassembles the original 48 bits with a small state machine
//! ([`decode::Decoder`]), which is also the reference implementation used
//! by the ZM4 simulation.
//!
//! Two essential protocol conditions from the paper are enforced and
//! testable here:
//!
//! 1. the triggerword is reserved — ordinary display traffic never uses it;
//! 2. each `(T, mᵢ)` pair is output atomically — no foreign pattern may be
//!    interleaved between `T` and its `mᵢ`.
//!
//! [`cost`] provides the intrusion cost models for the three monitoring
//! techniques the paper compares (hybrid, serial terminal, pure software),
//! anchored to the published numbers (< 120 µs per `hybrid_mon` call versus
//! > 2.4 ms via the V.24 terminal interface). [`software::SoftwareMonitor`]
//! > implements the in-memory software-monitoring baseline with local
//! > (skewed) timestamps.
//!
//! # Examples
//!
//! ```
//! use hybridmon::{decode::Decoder, encode::encode, MonEvent};
//!
//! let ev = MonEvent::new(0x0102, 0xDEAD_BEEF);
//! let mut decoder = Decoder::new();
//! let mut out = None;
//! for pattern in encode(ev) {
//!     if let Some(decoded) = decoder.feed(pattern) {
//!         out = Some(decoded);
//!     }
//! }
//! assert_eq!(out, Some(ev));
//! ```

pub mod cost;
pub mod decode;
pub mod encode;
pub mod event;
pub mod pattern;
pub mod registry;
pub mod software;

pub use cost::{IntrusionReport, MonitorCosts, MonitoringMode};
pub use decode::Decoder;
pub use event::{EventParam, EventToken, MonEvent};
pub use pattern::Pattern;
pub use registry::TokenRegistry;
