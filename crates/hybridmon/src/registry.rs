//! Naming instrumentation points.
//!
//! Relating recorded tokens back to the source code is the whole point of
//! hybrid monitoring ("it is relatively easy to relate the event traces …
//! to the measured program"). A [`TokenRegistry`] is the measurement-side
//! companion of the program's instrumentation: it maps each
//! [`EventToken`] to the name of the activity the instrumentation point
//! marks, and optionally to the *track* (process role) it belongs to.

use std::collections::BTreeMap;

use crate::event::EventToken;

/// A single registered instrumentation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenInfo {
    /// Name of the activity this token begins (e.g. `"Work"`).
    pub name: String,
    /// Logical grouping, usually the process role (e.g. `"Servant"`).
    pub group: String,
}

/// Maps event tokens to human-readable activity names.
///
/// # Examples
///
/// ```
/// use hybridmon::{EventToken, TokenRegistry};
///
/// let mut reg = TokenRegistry::new();
/// reg.register(EventToken::new(0x10), "Work", "Servant");
/// assert_eq!(reg.name(EventToken::new(0x10)), Some("Work"));
/// assert_eq!(reg.name(EventToken::new(0x99)), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenRegistry {
    entries: BTreeMap<EventToken, TokenInfo>,
}

impl TokenRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TokenRegistry::default()
    }

    /// Registers (or overwrites) a token's name and group.
    pub fn register(
        &mut self,
        token: EventToken,
        name: impl Into<String>,
        group: impl Into<String>,
    ) -> &mut Self {
        self.entries.insert(
            token,
            TokenInfo {
                name: name.into(),
                group: group.into(),
            },
        );
        self
    }

    /// Looks up a token's activity name.
    pub fn name(&self, token: EventToken) -> Option<&str> {
        self.entries.get(&token).map(|e| e.name.as_str())
    }

    /// Looks up a token's group.
    pub fn group(&self, token: EventToken) -> Option<&str> {
        self.entries.get(&token).map(|e| e.group.as_str())
    }

    /// Full info for a token.
    pub fn info(&self, token: EventToken) -> Option<&TokenInfo> {
        self.entries.get(&token)
    }

    /// The name, or a hex fallback for unregistered tokens.
    pub fn name_or_hex(&self, token: EventToken) -> String {
        self.name(token)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("{token}"))
    }

    /// Iterates over all registered tokens in token order.
    pub fn iter(&self) -> impl Iterator<Item = (EventToken, &TokenInfo)> {
        self.entries.iter().map(|(&t, i)| (t, i))
    }

    /// Number of registered tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no tokens are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(EventToken, TokenInfo)> for TokenRegistry {
    fn from_iter<I: IntoIterator<Item = (EventToken, TokenInfo)>>(iter: I) -> Self {
        TokenRegistry {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = TokenRegistry::new();
        reg.register(EventToken::new(1), "Distribute Jobs", "Master")
            .register(EventToken::new(2), "Send Jobs", "Master");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(EventToken::new(1)), Some("Distribute Jobs"));
        assert_eq!(reg.group(EventToken::new(2)), Some("Master"));
        assert_eq!(reg.info(EventToken::new(3)), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut reg = TokenRegistry::new();
        reg.register(EventToken::new(1), "Old", "G");
        reg.register(EventToken::new(1), "New", "G");
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.name(EventToken::new(1)), Some("New"));
    }

    #[test]
    fn hex_fallback() {
        let reg = TokenRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.name_or_hex(EventToken::new(0xAB)), "0x00AB");
    }

    #[test]
    fn iteration_is_token_ordered() {
        let mut reg = TokenRegistry::new();
        reg.register(EventToken::new(5), "c", "g");
        reg.register(EventToken::new(1), "a", "g");
        reg.register(EventToken::new(3), "b", "g");
        let tokens: Vec<u16> = reg.iter().map(|(t, _)| t.value()).collect();
        assert_eq!(tokens, vec![1, 3, 5]);
    }

    #[test]
    fn collect_from_iterator() {
        let reg: TokenRegistry = [(
            EventToken::new(7),
            TokenInfo {
                name: "Work".into(),
                group: "Servant".into(),
            },
        )]
        .into_iter()
        .collect();
        assert_eq!(reg.name(EventToken::new(7)), Some("Work"));
    }
}
