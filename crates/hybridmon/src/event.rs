//! Measurement events: a 16-bit token plus a 32-bit parameter.
//!
//! The paper's `hybrid_mon(p1, p2)` call outputs 48 bits per event: `p1`
//! identifies the instrumentation point ([`EventToken`]) and `p2` carries
//! point-specific data ([`EventParam`]) such as a job sequence number. The
//! 48-bit wire representation packs the token into the high 16 bits.

use std::fmt;

/// A 16-bit identifier for an instrumentation point.
///
/// # Examples
///
/// ```
/// use hybridmon::EventToken;
///
/// let t = EventToken::new(0x0102);
/// assert_eq!(t.value(), 0x0102);
/// assert_eq!(format!("{t}"), "0x0102");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventToken(u16);

impl EventToken {
    /// Creates a token from its raw 16-bit value.
    pub const fn new(value: u16) -> Self {
        EventToken(value)
    }

    /// The raw 16-bit value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl From<u16> for EventToken {
    fn from(v: u16) -> Self {
        EventToken(v)
    }
}

impl fmt::Display for EventToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04X}", self.0)
    }
}

/// The 32-bit parameter field accompanying an event.
///
/// # Examples
///
/// ```
/// use hybridmon::EventParam;
///
/// let p = EventParam::new(7);
/// assert_eq!(p.value(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventParam(u32);

impl EventParam {
    /// A zero parameter for events that carry no extra data.
    pub const NONE: EventParam = EventParam(0);

    /// Creates a parameter from its raw 32-bit value.
    pub const fn new(value: u32) -> Self {
        EventParam(value)
    }

    /// The raw 32-bit value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl From<u32> for EventParam {
    fn from(v: u32) -> Self {
        EventParam(v)
    }
}

impl fmt::Display for EventParam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One 48-bit measurement event as emitted by `hybrid_mon(p1, p2)`.
///
/// # Examples
///
/// ```
/// use hybridmon::MonEvent;
///
/// let ev = MonEvent::new(0xBEEF, 42);
/// assert_eq!(ev.raw48(), 0xBEEF_0000_002A);
/// assert_eq!(MonEvent::from_raw48(ev.raw48()), ev);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MonEvent {
    /// Event identifier (`p1` in the paper).
    pub token: EventToken,
    /// Additional data (`p2` in the paper).
    pub param: EventParam,
}

impl MonEvent {
    /// Creates an event from raw token and parameter values.
    pub const fn new(token: u16, param: u32) -> Self {
        MonEvent {
            token: EventToken::new(token),
            param: EventParam::new(param),
        }
    }

    /// Packs the event into its 48-bit wire representation (token in the
    /// high 16 bits, parameter in the low 32).
    pub const fn raw48(self) -> u64 {
        ((self.token.value() as u64) << 32) | self.param.value() as u64
    }

    /// Unpacks an event from its 48-bit wire representation.
    ///
    /// Bits above 47 are ignored.
    pub const fn from_raw48(raw: u64) -> Self {
        MonEvent::new(((raw >> 32) & 0xFFFF) as u16, (raw & 0xFFFF_FFFF) as u32)
    }
}

impl fmt::Display for MonEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.token, self.param)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn raw48_layout() {
        let ev = MonEvent::new(0xFFFF, 0xFFFF_FFFF);
        assert_eq!(ev.raw48(), 0xFFFF_FFFF_FFFF);
        let ev = MonEvent::new(0x8000, 0x0000_0001);
        assert_eq!(ev.raw48(), 0x8000_0000_0001);
    }

    #[test]
    fn from_raw48_masks_high_bits() {
        let ev = MonEvent::from_raw48(0xDEAD_1234_0000_0042);
        assert_eq!(ev.token.value(), 0x1234);
        assert_eq!(ev.param.value(), 0x42);
    }

    #[test]
    fn display_formats() {
        let ev = MonEvent::new(0x00AB, 9);
        assert_eq!(format!("{ev}"), "0x00AB(9)");
    }

    proptest! {
        #[test]
        fn raw48_roundtrip(token in any::<u16>(), param in any::<u32>()) {
            let ev = MonEvent::new(token, param);
            prop_assert_eq!(MonEvent::from_raw48(ev.raw48()), ev);
            prop_assert!(ev.raw48() < (1u64 << 48));
        }
    }
}
