//! Serializing a 48-bit event onto the seven-segment display.
//!
//! The 48 payload bits are split MSB-first into 16 groups of 3 bits; each
//! group `mᵢ` is preceded by the triggerword, giving the 32-pattern
//! sequence `T m0 T m1 … T m15`. The token therefore occupies `m0..m5`
//! (16 bits + 2 bits of `m5`) and the parameter the remainder — but
//! callers never need to know that: [`encode`] and
//! [`crate::decode::Decoder`] are exact inverses.

use crate::event::MonEvent;
use crate::pattern::Pattern;

/// Number of `(T, mᵢ)` pairs per event.
pub const PAIRS_PER_EVENT: usize = 16;

/// Number of display writes per event (`2 ×` [`PAIRS_PER_EVENT`]).
pub const WRITES_PER_EVENT: usize = 2 * PAIRS_PER_EVENT;

/// Encodes an event into the exact 32-pattern display sequence.
///
/// # Examples
///
/// ```
/// use hybridmon::{encode::encode, MonEvent, Pattern};
///
/// let seq = encode(MonEvent::new(0, 0));
/// assert_eq!(seq.len(), 32);
/// // Alternating trigger / data patterns.
/// assert!(seq.iter().step_by(2).all(|p| p.is_trigger()));
/// assert!(seq.iter().skip(1).step_by(2).all(|p| p.payload() == Some(0)));
/// ```
#[inline]
pub fn encode(event: MonEvent) -> [Pattern; WRITES_PER_EVENT] {
    encode_raw(event.raw48())
}

/// Encodes a raw 48-bit value (bits above 47 are ignored).
#[inline]
pub fn encode_raw(raw: u64) -> [Pattern; WRITES_PER_EVENT] {
    let raw = raw & 0xFFFF_FFFF_FFFF;
    let mut out = [Pattern::TRIGGER; WRITES_PER_EVENT];
    for i in 0..PAIRS_PER_EVENT {
        // m0 carries the most significant 3 bits.
        let shift = 3 * (PAIRS_PER_EVENT - 1 - i);
        let bits = ((raw >> shift) & 0b111) as u8;
        out[2 * i] = Pattern::TRIGGER;
        out[2 * i + 1] = Pattern::data(bits);
    }
    out
}

/// Reassembles 16 data groups (3 bits each, MSB-first) into the 48-bit
/// payload. Inverse of the grouping done by [`encode_raw`]; used by the
/// decoder.
///
/// # Panics
///
/// Panics if `groups` does not contain exactly [`PAIRS_PER_EVENT`] entries
/// or any group exceeds 3 bits.
#[inline]
pub fn assemble_groups(groups: &[u8]) -> u64 {
    assert_eq!(groups.len(), PAIRS_PER_EVENT, "need exactly 16 data groups");
    let mut raw = 0u64;
    for &g in groups {
        assert!(g < 8, "data group exceeds 3 bits");
        raw = (raw << 3) | g as u64;
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sequence_shape() {
        let seq = encode(MonEvent::new(0xABCD, 0x1234_5678));
        assert_eq!(seq.len(), 32);
        for (i, p) in seq.iter().enumerate() {
            if i % 2 == 0 {
                assert!(p.is_trigger(), "position {i} must be the triggerword");
            } else {
                assert!(p.payload().is_some(), "position {i} must be a data pattern");
            }
        }
    }

    #[test]
    fn msb_first_grouping() {
        // Token 0xE000 => top three bits are 0b111 => m0 = 7.
        let seq = encode(MonEvent::new(0xE000, 0));
        assert_eq!(seq[1].payload(), Some(7));
        // Everything else zero.
        assert!(seq
            .iter()
            .skip(3)
            .step_by(2)
            .all(|p| p.payload() == Some(0)));
    }

    #[test]
    fn lsb_lands_in_m15() {
        let seq = encode(MonEvent::new(0, 1));
        assert_eq!(seq[31].payload(), Some(1));
    }

    #[test]
    fn assemble_inverts_grouping() {
        let raw = 0x8765_4321_FEDCu64;
        let seq = encode_raw(raw);
        let groups: Vec<u8> = seq.iter().filter_map(|p| p.payload()).collect();
        assert_eq!(assemble_groups(&groups), raw);
    }

    #[test]
    #[should_panic(expected = "16 data groups")]
    fn assemble_rejects_short_input() {
        assemble_groups(&[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn assemble_rejects_wide_group() {
        assemble_groups(&[8; PAIRS_PER_EVENT]);
    }

    proptest! {
        #[test]
        fn encode_assemble_roundtrip(raw in 0u64..(1 << 48)) {
            let seq = encode_raw(raw);
            let groups: Vec<u8> = seq.iter().filter_map(|p| p.payload()).collect();
            prop_assert_eq!(assemble_groups(&groups), raw);
        }

        #[test]
        fn high_bits_ignored(raw in any::<u64>()) {
            prop_assert_eq!(encode_raw(raw), encode_raw(raw & 0xFFFF_FFFF_FFFF));
        }
    }
}
