//! The pure-software monitoring baseline.
//!
//! Before hybrid monitoring, programmers "resort to rudimentary methods,
//! such as writing log-files during program execution". This module models
//! that approach faithfully enough to compare against: each instrumented
//! event is stored in a node-local buffer and stamped with the node's
//! *local* clock — which on a multiprocessor without a global clock is
//! offset and drifting relative to every other node's. Merging such
//! per-node logs by timestamp produces the causality violations the paper
//! uses to motivate the ZM4's globally valid time stamps.

use des::clock::ClockModel;
use des::time::SimTime;

use crate::event::MonEvent;

/// One record in a software-monitoring log: the event plus the *local*
/// clock reading at which it was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftRecord {
    /// The instrumented event.
    pub event: MonEvent,
    /// Local clock reading, in local nanoseconds. Comparable only with
    /// records from the same node.
    pub local_ts: u64,
    /// True global time (ground truth, unavailable to a real software
    /// monitor; kept for validation).
    pub true_time: SimTime,
}

/// A node-local software monitor: an in-memory event buffer with a local
/// clock.
///
/// # Examples
///
/// ```
/// use des::clock::ClockModel;
/// use des::time::{SimDuration, SimTime};
/// use hybridmon::{software::SoftwareMonitor, MonEvent};
///
/// let clock = ClockModel::free_running(1_000, 0.0, SimDuration::from_micros(10));
/// let mut mon = SoftwareMonitor::new(clock, 1024);
/// mon.record(SimTime::from_micros(50), MonEvent::new(1, 0));
/// let log = mon.records();
/// assert_eq!(log.len(), 1);
/// // The local stamp includes the 1us offset, quantized to 10us.
/// assert_eq!(log[0].local_ts, 50_000); // 51_000 quantized down to 50_000
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareMonitor {
    clock: ClockModel,
    capacity: usize,
    records: Vec<SoftRecord>,
    dropped: u64,
}

impl SoftwareMonitor {
    /// Creates a monitor with the given local clock and buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(clock: ClockModel, capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "software monitor buffer must hold at least one record"
        );
        SoftwareMonitor {
            clock,
            capacity,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Records an event at true time `now`, stamping it with the local
    /// clock. Records beyond the buffer capacity are dropped and counted —
    /// a real log buffer fills up.
    pub fn record(&mut self, now: SimTime, event: MonEvent) {
        if self.records.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.records.push(SoftRecord {
            event,
            local_ts: self.clock.stamp(now),
            true_time: now,
        });
    }

    /// The recorded log, in recording order.
    pub fn records(&self) -> &[SoftRecord] {
        &self.records
    }

    /// Number of events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The local clock model in use.
    pub fn clock(&self) -> &ClockModel {
        &self.clock
    }

    /// Consumes the monitor and returns its log.
    pub fn into_records(self) -> Vec<SoftRecord> {
        self.records
    }
}

/// Merges per-node software logs by their **local** timestamps — the only
/// ordering a real software monitor has. Returns `(node_index, record)`
/// pairs in (misleading) merged order.
///
/// This is deliberately the *wrong* thing to do across unsynchronized
/// clocks; [`count_order_inversions`] quantifies how wrong.
pub fn merge_by_local_ts(logs: &[Vec<SoftRecord>]) -> Vec<(usize, SoftRecord)> {
    let mut all: Vec<(usize, SoftRecord)> = logs
        .iter()
        .enumerate()
        .flat_map(|(i, log)| log.iter().map(move |&r| (i, r)))
        .collect();
    all.sort_by_key(|(i, r)| (r.local_ts, *i));
    all
}

/// Counts adjacent pairs in a merged log whose *true* times are in the
/// opposite order of their merged (local-timestamp) order — i.e. how many
/// neighbouring events the merge visibly mis-ordered.
pub fn count_order_inversions(merged: &[(usize, SoftRecord)]) -> u64 {
    merged
        .windows(2)
        .filter(|w| w[1].1.true_time < w[0].1.true_time)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimDuration;

    fn quick_clock(offset_ns: i64) -> ClockModel {
        ClockModel::free_running(offset_ns, 0.0, SimDuration::from_nanos(1))
    }

    #[test]
    fn records_and_caps() {
        let mut m = SoftwareMonitor::new(quick_clock(0), 2);
        for i in 0..5 {
            m.record(SimTime::from_micros(i), MonEvent::new(i as u16, 0));
        }
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.dropped(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_capacity_rejected() {
        SoftwareMonitor::new(quick_clock(0), 0);
    }

    #[test]
    fn skewed_clocks_produce_inversions() {
        // Node 0 is 1ms fast; node 1 is exact. Event A happens on node 0
        // at t=1ms, event B on node 1 at t=1.5ms — A truly precedes B,
        // but local stamps say A=2.0ms, B=1.5ms.
        let mut n0 = SoftwareMonitor::new(quick_clock(1_000_000), 16);
        let mut n1 = SoftwareMonitor::new(quick_clock(0), 16);
        n0.record(SimTime::from_micros(1_000), MonEvent::new(0xA, 0));
        n1.record(SimTime::from_micros(1_500), MonEvent::new(0xB, 0));
        let merged = merge_by_local_ts(&[n0.into_records(), n1.into_records()]);
        assert_eq!(merged[0].1.event.token.value(), 0xB, "merge puts B first");
        assert_eq!(count_order_inversions(&merged), 1);
    }

    #[test]
    fn synchronized_clocks_produce_no_inversions() {
        let mut n0 = SoftwareMonitor::new(quick_clock(0), 16);
        let mut n1 = SoftwareMonitor::new(quick_clock(0), 16);
        for i in 0..10u64 {
            let t = SimTime::from_micros(i * 100);
            if i % 2 == 0 {
                n0.record(t, MonEvent::new(i as u16, 0));
            } else {
                n1.record(t, MonEvent::new(i as u16, 0));
            }
        }
        let merged = merge_by_local_ts(&[n0.into_records(), n1.into_records()]);
        assert_eq!(count_order_inversions(&merged), 0);
        // And order matches true order.
        for w in merged.windows(2) {
            assert!(w[0].1.true_time <= w[1].1.true_time);
        }
    }

    #[test]
    fn coarse_resolution_quantizes_stamps() {
        let clock = ClockModel::free_running(0, 0.0, SimDuration::from_micros(10));
        let mut m = SoftwareMonitor::new(clock, 4);
        m.record(SimTime::from_nanos(19_999), MonEvent::new(1, 1));
        assert_eq!(m.records()[0].local_ts, 10_000);
    }
}
