//! The event-detector state machine.
//!
//! This is the recognition logic the paper implements in programmable
//! logic inside the SUPRENUM↔ZM4 interface: it watches the raw pattern
//! stream coming off the seven-segment display socket, recognizes the
//! triggerword, and reassembles the original 48-bit events from the
//! `T m0 T m1 … T m15` sequence.
//!
//! The decoder tolerates exactly the traffic the protocol permits:
//!
//! * **Between pairs**, patterns other than the triggerword may appear
//!   (the communication firmware's own status display) and are skipped.
//! * **Within a pair** — between `T` and its `mᵢ` — nothing may intervene;
//!   the paper requires the pair to be output atomically. Any intervening
//!   pattern is counted as an atomicity violation and the partial event is
//!   discarded, mirroring how the real state machine would lose sync.

use crate::encode::{assemble_groups, PAIRS_PER_EVENT};
use crate::event::MonEvent;
use crate::pattern::Pattern;

/// Counters describing what the detector saw besides clean events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Complete 48-bit events assembled.
    pub events: u64,
    /// Patterns skipped while no pair was in progress (legal firmware
    /// traffic between pairs, or before any event started).
    pub stray_patterns: u64,
    /// Patterns that intervened between a triggerword and its data
    /// pattern — violations of the protocol's atomicity condition.
    pub atomicity_violations: u64,
    /// Partially assembled events discarded after a violation.
    pub discarded_partials: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// No pair in progress; `groups` holds the data groups collected so
    /// far for the current event (empty when idle).
    BetweenPairs,
    /// A triggerword was seen; the next pattern must be a data pattern.
    AwaitData,
}

/// Incremental decoder for the seven-segment monitoring protocol.
///
/// Feed it every pattern written to the display, in order; it returns a
/// [`MonEvent`] whenever the 16th pair completes.
///
/// # Examples
///
/// ```
/// use hybridmon::{decode::Decoder, encode::encode, MonEvent, Pattern};
///
/// let mut d = Decoder::new();
/// // Firmware status traffic before the event is ignored…
/// assert_eq!(d.feed(Pattern::new(9).unwrap()), None);
/// // …then a full event decodes.
/// let ev = MonEvent::new(1, 2);
/// let decoded: Vec<_> = encode(ev).into_iter().filter_map(|p| d.feed(p)).collect();
/// assert_eq!(decoded, vec![ev]);
/// assert_eq!(d.stats().stray_patterns, 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Decoder {
    state: State,
    /// The data groups collected so far — a fixed inline array (an
    /// event is at most [`PAIRS_PER_EVENT`] groups), so a decoder never
    /// touches the heap and is freely `Copy`able.
    groups: [u8; PAIRS_PER_EVENT],
    group_len: usize,
    stats: DecodeStats,
}

impl Decoder {
    /// Creates a decoder in the idle state.
    pub fn new() -> Self {
        Decoder {
            state: State::BetweenPairs,
            groups: [0; PAIRS_PER_EVENT],
            group_len: 0,
            stats: DecodeStats::default(),
        }
    }

    /// Consumes one display pattern; returns a complete event if this
    /// pattern finished one.
    #[inline]
    pub fn feed(&mut self, pattern: Pattern) -> Option<MonEvent> {
        match self.state {
            State::BetweenPairs => {
                if pattern.is_trigger() {
                    self.state = State::AwaitData;
                } else {
                    self.stats.stray_patterns += 1;
                }
                None
            }
            State::AwaitData => match pattern.payload() {
                Some(bits) => {
                    self.state = State::BetweenPairs;
                    self.groups[self.group_len] = bits;
                    self.group_len += 1;
                    if self.group_len == PAIRS_PER_EVENT {
                        let raw = assemble_groups(&self.groups);
                        self.group_len = 0;
                        self.stats.events += 1;
                        Some(MonEvent::from_raw48(raw))
                    } else {
                        None
                    }
                }
                None => {
                    // Something intervened between T and its data pattern.
                    self.stats.atomicity_violations += 1;
                    if self.group_len > 0 {
                        self.stats.discarded_partials += 1;
                        self.group_len = 0;
                    }
                    // A second triggerword may itself start a fresh pair;
                    // anything else drops us back between pairs.
                    self.state = if pattern.is_trigger() {
                        State::AwaitData
                    } else {
                        State::BetweenPairs
                    };
                    None
                }
            },
        }
    }

    /// Decodes a whole pattern sequence, returning every completed event.
    pub fn feed_all<I>(&mut self, patterns: I) -> Vec<MonEvent>
    where
        I: IntoIterator<Item = Pattern>,
    {
        patterns.into_iter().filter_map(|p| self.feed(p)).collect()
    }

    /// Returns the detector's health counters.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// Returns `true` if an event is partially assembled.
    pub fn in_progress(&self) -> bool {
        self.group_len > 0 || self.state == State::AwaitData
    }

    /// Abandons any partial assembly and returns to idle, as the hardware
    /// would on a watchdog timeout.
    pub fn reset(&mut self) {
        if self.in_progress() {
            self.stats.discarded_partials += 1;
        }
        self.group_len = 0;
        self.state = State::BetweenPairs;
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Decoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    fn firmware(i: u8) -> Pattern {
        // Indices 8..=14: displayable but neither trigger nor data.
        Pattern::new(8 + (i % 7)).unwrap()
    }

    #[test]
    fn decodes_back_to_back_events() {
        let evs = [
            MonEvent::new(1, 10),
            MonEvent::new(2, 20),
            MonEvent::new(3, 30),
        ];
        let mut d = Decoder::new();
        let mut out = Vec::new();
        for ev in evs {
            out.extend(d.feed_all(encode(ev)));
        }
        assert_eq!(out, evs);
        assert_eq!(d.stats().events, 3);
        assert_eq!(d.stats().atomicity_violations, 0);
        assert!(!d.in_progress());
    }

    #[test]
    fn firmware_traffic_between_pairs_is_tolerated() {
        let ev = MonEvent::new(0x1234, 0xCAFE_F00D);
        let seq = encode(ev);
        let mut d = Decoder::new();
        let mut out = Vec::new();
        for (i, pair) in seq.chunks(2).enumerate() {
            // Inject firmware noise before every pair.
            assert_eq!(d.feed(firmware(i as u8)), None);
            for &p in pair {
                if let Some(e) = d.feed(p) {
                    out.push(e);
                }
            }
        }
        assert_eq!(out, vec![ev]);
        assert_eq!(d.stats().stray_patterns, 16);
        assert_eq!(d.stats().atomicity_violations, 0);
    }

    #[test]
    fn violation_within_pair_discards_event() {
        let ev = MonEvent::new(7, 7);
        let seq = encode(ev);
        let mut d = Decoder::new();
        // Feed the first pair cleanly, then break the second pair.
        assert_eq!(d.feed(seq[0]), None);
        assert_eq!(d.feed(seq[1]), None);
        assert_eq!(d.feed(seq[2]), None); // T
        assert_eq!(d.feed(firmware(0)), None); // intervening pattern!
        assert_eq!(d.stats().atomicity_violations, 1);
        assert_eq!(d.stats().discarded_partials, 1);
        // The rest of the sequence no longer assembles a full event.
        let out = d.feed_all(seq[4..].iter().copied());
        assert!(out.is_empty());
    }

    #[test]
    fn double_trigger_restarts_pair() {
        let mut d = Decoder::new();
        d.feed(Pattern::TRIGGER);
        d.feed(Pattern::TRIGGER); // violation, but T can open a new pair
        assert_eq!(d.stats().atomicity_violations, 1);
        // Now a data pattern is accepted as part of the new pair.
        assert_eq!(d.feed(Pattern::data(3)), None);
        assert!(d.in_progress());
    }

    #[test]
    fn reset_discards_partial() {
        let mut d = Decoder::new();
        let seq = encode(MonEvent::new(1, 1));
        for &p in &seq[..6] {
            d.feed(p);
        }
        assert!(d.in_progress());
        d.reset();
        assert!(!d.in_progress());
        assert_eq!(d.stats().discarded_partials, 1);
        // A clean event decodes fine afterwards.
        let ev = MonEvent::new(9, 9);
        assert_eq!(d.feed_all(encode(ev)), vec![ev]);
    }

    proptest! {
        /// Round trip through encode → decode for arbitrary events,
        /// optionally with firmware noise between pairs.
        #[test]
        fn roundtrip_with_noise(
            token in any::<u16>(),
            param in any::<u32>(),
            noise in proptest::collection::vec(8u8..15, 0..8),
        ) {
            let ev = MonEvent::new(token, param);
            let seq = encode(ev);
            let mut d = Decoder::new();
            let mut out = Vec::new();
            for (i, pair) in seq.chunks(2).enumerate() {
                if i < noise.len() {
                    d.feed(Pattern::new(noise[i]).unwrap());
                }
                for &p in pair {
                    out.extend(d.feed(p));
                }
            }
            prop_assert_eq!(out, vec![ev]);
            prop_assert_eq!(d.stats().atomicity_violations, 0);
        }

        /// The protocol carries no checksum, so a single dropped display
        /// write desynchronizes event framing: events before the drop
        /// decode exactly; events after it may be garbled — until the
        /// watchdog [`Decoder::reset`] realigns the detector at an idle
        /// boundary, after which everything decodes exactly again. (The
        /// ZM4's probe path is lossless, so this documents the failure
        /// mode and its hardware remedy rather than a live hazard.)
        #[test]
        fn dropped_pattern_desyncs_until_watchdog_reset(
            drop_event in 0usize..3,
            drop_offset in 0usize..32,
            base in any::<u16>(),
        ) {
            let events: Vec<MonEvent> =
                (0..8u32).map(|i| MonEvent::new(base.wrapping_add(i as u16), i)).collect();
            let mut d = Decoder::new();

            // Events before the drop decode exactly.
            let mut decoded_before = Vec::new();
            for ev in &events[..drop_event] {
                decoded_before.extend(d.feed_all(encode(*ev)));
            }
            prop_assert_eq!(decoded_before.as_slice(), &events[..drop_event]);

            // The damaged event plus one successor fed continuously.
            let mut damaged: Vec<Pattern> = encode(events[drop_event]).to_vec();
            damaged.remove(drop_offset);
            damaged.extend(encode(events[drop_event + 1]));
            let garbled = d.feed_all(damaged);
            // At most one (possibly fabricated) event can emerge from the
            // two damaged events' worth of patterns.
            prop_assert!(garbled.len() <= 1, "impossibly many events: {garbled:?}");

            // Watchdog: the display goes quiet, the detector resets...
            d.reset();
            // ...and every later event decodes exactly.
            for ev in &events[drop_event + 2..] {
                let out = d.feed_all(encode(*ev));
                prop_assert_eq!(out.as_slice(), std::slice::from_ref(ev));
            }
        }

        /// A stream of many events interleaved with inter-pair noise
        /// decodes every event exactly once, in order.
        #[test]
        fn stream_of_events(params in proptest::collection::vec(any::<u32>(), 1..20)) {
            let evs: Vec<MonEvent> =
                params.iter().enumerate().map(|(i, &p)| MonEvent::new(i as u16, p)).collect();
            let mut d = Decoder::new();
            let mut out = Vec::new();
            for ev in &evs {
                out.extend(d.feed_all(encode(*ev)));
            }
            prop_assert_eq!(out, evs);
        }
    }
}
