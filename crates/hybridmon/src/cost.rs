//! Intrusion cost models for the three monitoring techniques.
//!
//! Every monitoring technique steals time from the object system; the
//! paper's argument for hybrid monitoring rests on how *little* it steals.
//! The defaults below are anchored to the published numbers:
//!
//! | technique | per-event cost | anchor |
//! |---|---|---|
//! | hybrid (`hybrid_mon` via display) | 110 µs | "less than one twentieth of the time … via the terminal interface", i.e. < 120 µs |
//! | serial terminal (V.24) | 2.4 ms + context switch | "less than 20 KBit/s … more than 2.4 ms to output 48 bits, not including time for context switching" |
//! | software (in-memory log record) | 25 µs | order-of-magnitude figure for composing and storing a 48-bit record plus a local timestamp on a 20 MHz MC68020 |
//!
//! The hybrid cost is spread uniformly over the 32 display writes so the
//! external detector sees realistically spaced patterns.

use des::time::SimDuration;

use crate::encode::WRITES_PER_EVENT;

/// Which monitoring technique an experiment instruments the program with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MonitoringMode {
    /// `hybrid_mon` via the seven-segment display to the external ZM4.
    #[default]
    Hybrid,
    /// 48-bit events over the V.24 serial terminal interface.
    Terminal,
    /// Pure software monitoring into node-local memory, stamped with the
    /// node's own (unsynchronized) clock.
    Software,
    /// No instrumentation at all (for intrusion baselines).
    Off,
}

impl MonitoringMode {
    /// All modes, in comparison order.
    pub const ALL: [MonitoringMode; 4] = [
        MonitoringMode::Hybrid,
        MonitoringMode::Terminal,
        MonitoringMode::Software,
        MonitoringMode::Off,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MonitoringMode::Hybrid => "hybrid",
            MonitoringMode::Terminal => "terminal",
            MonitoringMode::Software => "software",
            MonitoringMode::Off => "off",
        }
    }
}

impl std::fmt::Display for MonitoringMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-event intrusion costs of each technique.
///
/// # Examples
///
/// ```
/// use hybridmon::{MonitorCosts, MonitoringMode};
///
/// let costs = MonitorCosts::default();
/// let hybrid = costs.per_event(MonitoringMode::Hybrid);
/// let terminal = costs.per_event(MonitoringMode::Terminal);
/// // The paper's headline ratio: hybrid is >20x cheaper than the
/// // terminal interface.
/// assert!(terminal.as_nanos() / hybrid.as_nanos() >= 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorCosts {
    /// Total CPU time of one `hybrid_mon` call (encode + 32 display
    /// writes).
    pub hybrid_call: SimDuration,
    /// Serial transfer time for 48 bits over the V.24 interface.
    pub terminal_transfer: SimDuration,
    /// Context-switch overhead added to each terminal output.
    pub terminal_ctx_switch: SimDuration,
    /// Cost of composing and storing one software log record.
    pub software_call: SimDuration,
}

impl MonitorCosts {
    /// Costs anchored to the paper's published figures.
    pub fn paper_defaults() -> Self {
        MonitorCosts {
            hybrid_call: SimDuration::from_micros(110),
            // 48 bits at 20 kbit/s = 2.4 ms.
            terminal_transfer: SimDuration::from_micros(2_400),
            terminal_ctx_switch: SimDuration::from_micros(500),
            software_call: SimDuration::from_micros(25),
        }
    }

    /// The CPU time one instrumentation call steals under `mode`.
    pub fn per_event(&self, mode: MonitoringMode) -> SimDuration {
        match mode {
            MonitoringMode::Hybrid => self.hybrid_call,
            MonitoringMode::Terminal => self.terminal_transfer + self.terminal_ctx_switch,
            MonitoringMode::Software => self.software_call,
            MonitoringMode::Off => SimDuration::ZERO,
        }
    }

    /// The spacing between consecutive display-pattern writes within one
    /// `hybrid_mon` call (the call's cost spread over its 32 writes).
    pub fn hybrid_write_spacing(&self) -> SimDuration {
        self.hybrid_call / WRITES_PER_EVENT as u64
    }
}

impl Default for MonitorCosts {
    fn default() -> Self {
        MonitorCosts::paper_defaults()
    }
}

/// Summary of the monitoring overhead incurred during a run.
///
/// Produced by the machine simulator; the key quantity is
/// [`intrusion_ratio`](IntrusionReport::intrusion_ratio), which the paper
/// requires to be at least two orders of magnitude below the measured
/// activity durations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntrusionReport {
    /// Instrumentation events emitted.
    pub events: u64,
    /// Total CPU time consumed by instrumentation.
    pub total_intrusion: SimDuration,
    /// Total CPU time consumed by the application itself.
    pub total_application: SimDuration,
}

impl IntrusionReport {
    /// Records one instrumentation call.
    pub fn record_event(&mut self, cost: SimDuration) {
        self.events += 1;
        self.total_intrusion += cost;
    }

    /// Records application (non-instrumentation) CPU time.
    pub fn record_application(&mut self, time: SimDuration) {
        self.total_application += time;
    }

    /// Mean intrusion per event.
    pub fn mean_per_event(&self) -> SimDuration {
        if self.events == 0 {
            SimDuration::ZERO
        } else {
            self.total_intrusion / self.events
        }
    }

    /// Fraction of total CPU time stolen by instrumentation, in `[0, 1]`.
    pub fn intrusion_ratio(&self) -> f64 {
        let total = self.total_intrusion.as_secs_f64() + self.total_application.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.total_intrusion.as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_ratio_holds() {
        let c = MonitorCosts::paper_defaults();
        let hybrid = c.per_event(MonitoringMode::Hybrid);
        // The paper: one hybrid_mon call takes less than one twentieth of
        // the *transfer* time of the terminal interface.
        assert!(hybrid.as_nanos() * 20 <= c.terminal_transfer.as_nanos());
        assert!(hybrid < SimDuration::from_micros(120));
        assert_eq!(c.per_event(MonitoringMode::Off), SimDuration::ZERO);
    }

    #[test]
    fn terminal_includes_context_switch() {
        let c = MonitorCosts::paper_defaults();
        assert_eq!(
            c.per_event(MonitoringMode::Terminal),
            c.terminal_transfer + c.terminal_ctx_switch
        );
        assert!(c.per_event(MonitoringMode::Terminal) > SimDuration::from_micros(2_400));
    }

    #[test]
    fn write_spacing_covers_call() {
        let c = MonitorCosts::paper_defaults();
        let spacing = c.hybrid_write_spacing();
        assert!(spacing * 32 <= c.hybrid_call);
        assert!(spacing * 33 > c.hybrid_call);
    }

    #[test]
    fn intrusion_report_math() {
        let mut r = IntrusionReport::default();
        r.record_event(SimDuration::from_micros(100));
        r.record_event(SimDuration::from_micros(100));
        r.record_application(SimDuration::from_millis(19));
        r.record_application(SimDuration::from_micros(800));
        assert_eq!(r.events, 2);
        assert_eq!(r.mean_per_event(), SimDuration::from_micros(100));
        assert!((r.intrusion_ratio() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = IntrusionReport::default();
        assert_eq!(r.mean_per_event(), SimDuration::ZERO);
        assert_eq!(r.intrusion_ratio(), 0.0);
    }

    #[test]
    fn mode_names() {
        assert_eq!(MonitoringMode::Hybrid.to_string(), "hybrid");
        assert_eq!(MonitoringMode::ALL.len(), 4);
    }
}
