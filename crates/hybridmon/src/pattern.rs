//! Seven-segment display patterns.
//!
//! The SUPRENUM node's front-cover display is driven by a gate array that
//! can show only **16 distinct patterns**. The monitoring protocol reserves
//! one of them as the triggerword `T`; eight of the remaining patterns
//! carry 3 bits of payload each. The other seven patterns stay available
//! for the communication firmware's own status display — the decoder
//! ignores them outside a `(T, mᵢ)` pair.

use std::fmt;

/// One of the 16 patterns the seven-segment display can show.
///
/// # Examples
///
/// ```
/// use hybridmon::Pattern;
///
/// let p = Pattern::new(5).unwrap();
/// assert_eq!(p.index(), 5);
/// assert!(Pattern::new(16).is_none());
/// assert_eq!(Pattern::TRIGGER.index(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pattern(u8);

impl Pattern {
    /// The reserved triggerword `T` announcing that measurement data
    /// follows. By convention the highest pattern index is reserved.
    pub const TRIGGER: Pattern = Pattern(15);

    /// Number of distinct patterns the display hardware can show.
    pub const COUNT: u8 = 16;

    /// Creates a pattern from a display index, returning `None` if the
    /// index exceeds what the gate array can display.
    #[inline]
    pub const fn new(index: u8) -> Option<Pattern> {
        if index < Self::COUNT {
            Some(Pattern(index))
        } else {
            None
        }
    }

    /// Creates a data pattern carrying the low 3 bits of `bits`.
    ///
    /// Data patterns occupy indices 0–7, so they can never collide with
    /// the triggerword.
    #[inline]
    pub const fn data(bits: u8) -> Pattern {
        Pattern(bits & 0b111)
    }

    /// The display index (0–15).
    #[inline]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the reserved triggerword.
    #[inline]
    pub const fn is_trigger(self) -> bool {
        self.0 == Self::TRIGGER.0
    }

    /// Returns the 3 payload bits if this is a data pattern (index 0–7).
    #[inline]
    pub const fn payload(self) -> Option<u8> {
        if self.0 < 8 {
            Some(self.0)
        } else {
            None
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_trigger() {
            write!(f, "T")
        } else {
            write!(f, "m{:X}", self.0)
        }
    }
}

impl TryFrom<u8> for Pattern {
    type Error = InvalidPatternError;

    fn try_from(index: u8) -> Result<Self, Self::Error> {
        Pattern::new(index).ok_or(InvalidPatternError { index })
    }
}

/// Error returned when a display index exceeds the 16 representable
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPatternError {
    index: u8,
}

impl fmt::Display for InvalidPatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "display index {} exceeds the 16 representable patterns",
            self.index
        )
    }
}

impl std::error::Error for InvalidPatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_is_reserved_top_pattern() {
        assert!(Pattern::TRIGGER.is_trigger());
        assert_eq!(Pattern::TRIGGER.index(), 15);
        assert_eq!(Pattern::TRIGGER.payload(), None);
    }

    #[test]
    fn data_patterns_never_collide_with_trigger() {
        for bits in 0..=u8::MAX {
            let p = Pattern::data(bits);
            assert!(!p.is_trigger());
            assert_eq!(p.payload(), Some(bits & 0b111));
        }
    }

    #[test]
    fn new_validates_range() {
        assert!(Pattern::new(15).is_some());
        assert!(Pattern::new(16).is_none());
        assert!(Pattern::try_from(20).is_err());
        let err = Pattern::try_from(20).unwrap_err();
        assert!(err.to_string().contains("20"));
    }

    #[test]
    fn firmware_status_patterns_carry_no_payload() {
        // Indices 8..15 are neither trigger (except 15) nor data.
        for i in 8..15 {
            let p = Pattern::new(i).unwrap();
            assert!(!p.is_trigger());
            assert_eq!(p.payload(), None);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", Pattern::TRIGGER), "T");
        assert_eq!(format!("{}", Pattern::data(5)), "m5");
    }
}
