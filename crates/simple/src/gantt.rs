//! Gantt-chart (time-state diagram) rendering.
//!
//! The paper's Figures 7–9 plot one horizontal band per process, with one
//! row per program state; a bar in a row means the process was in that
//! state. [`Gantt`] reproduces that layout, rendering to plain text for
//! terminals and to SVG for documents.

use std::fmt::Write as _;

use crate::activity::ActivityTrack;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttStyle {
    /// Character columns of the plot area (text renderer).
    pub width: usize,
    /// Bar glyph.
    pub bar: char,
    /// Empty glyph.
    pub space: char,
    /// Pixel height of one state row (SVG renderer).
    pub row_height: u32,
    /// Pixel width of the plot area (SVG renderer).
    pub svg_width: u32,
}

impl Default for GanttStyle {
    fn default() -> Self {
        GanttStyle {
            width: 100,
            bar: '#',
            space: ' ',
            row_height: 14,
            svg_width: 900,
        }
    }
}

/// A Gantt chart over a set of activity tracks and a time window.
///
/// # Examples
///
/// ```
/// use simple::{ActivityTrack, Gantt, Interval};
///
/// let track = ActivityTrack::from_intervals(
///     "Servant",
///     vec![
///         Interval { start_ns: 0, end_ns: 400, state: "Work".into() },
///         Interval { start_ns: 400, end_ns: 1_000, state: "Wait".into() },
///     ],
/// );
/// let chart = Gantt::new(vec![track], 0, 1_000);
/// let text = chart.render_text();
/// assert!(text.contains("Work"));
/// assert!(text.contains("Wait"));
/// ```
#[derive(Debug, Clone)]
pub struct Gantt {
    tracks: Vec<ActivityTrack>,
    from_ns: u64,
    to_ns: u64,
    style: GanttStyle,
}

impl Gantt {
    /// Creates a chart over `[from_ns, to_ns)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(tracks: Vec<ActivityTrack>, from_ns: u64, to_ns: u64) -> Self {
        assert!(from_ns < to_ns, "Gantt window must be nonempty");
        Gantt {
            tracks,
            from_ns,
            to_ns,
            style: GanttStyle::default(),
        }
    }

    /// Replaces the rendering style.
    pub fn with_style(mut self, style: GanttStyle) -> Self {
        self.style = style;
        self
    }

    /// The chart's tracks.
    pub fn tracks(&self) -> &[ActivityTrack] {
        &self.tracks
    }

    /// The time window.
    pub fn window(&self) -> (u64, u64) {
        (self.from_ns, self.to_ns)
    }

    fn column_of(&self, t: u64) -> usize {
        let span = (self.to_ns - self.from_ns) as u128;
        let rel = t
            .saturating_sub(self.from_ns)
            .min(self.to_ns - self.from_ns) as u128;
        ((rel * self.style.width as u128) / span) as usize
    }

    /// Renders the chart as plain text: per track, one row per state, a
    /// bar where the state is active, and a time axis at the bottom.
    pub fn render_text(&self) -> String {
        let label_width = self
            .tracks
            .iter()
            .flat_map(|t| t.states().into_iter().map(str::len))
            .max()
            .unwrap_or(4)
            .max(4)
            + 2;
        let mut out = String::new();
        for track in &self.tracks {
            let _ = writeln!(out, "== {} ==", track.name());
            for state in track.states() {
                let mut row = vec![self.style.space; self.style.width];
                for iv in track.intervals().iter().filter(|iv| iv.state == state) {
                    if iv.end_ns <= self.from_ns || iv.start_ns >= self.to_ns {
                        continue;
                    }
                    let c0 = self.column_of(iv.start_ns);
                    let c1 = self.column_of(iv.end_ns).max(c0 + 1).min(self.style.width);
                    for cell in row.iter_mut().take(c1).skip(c0) {
                        *cell = self.style.bar;
                    }
                }
                let bar: String = row.into_iter().collect();
                let _ = writeln!(out, "{state:>label_width$} |{bar}|");
            }
        }
        // Time axis in seconds.
        let _ = writeln!(
            out,
            "{:>label_width$} +{}+",
            "",
            "-".repeat(self.style.width),
        );
        let _ = writeln!(
            out,
            "{:>label_width$}  {:<w$}{:>w2$}",
            "t(s)",
            format!("{:.4}", self.from_ns as f64 / 1e9),
            format!("{:.4}", self.to_ns as f64 / 1e9),
            w = self.style.width / 2,
            w2 = self.style.width - self.style.width / 2,
        );
        out
    }

    /// Renders the chart as a standalone SVG document.
    pub fn render_svg(&self) -> String {
        const LABEL_PX: u32 = 160;
        const PALETTE: [&str; 8] = [
            "#4878a8", "#e06c4f", "#5ba163", "#a58a2d", "#8b6cc0", "#c55d88", "#4da5a5", "#8a8a8a",
        ];
        let rows: usize = self.tracks.iter().map(|t| t.states().len()).sum();
        let height = (rows as u32 + self.tracks.len() as u32) * self.style.row_height + 40;
        let width = LABEL_PX + self.style.svg_width + 20;
        let span = (self.to_ns - self.from_ns) as f64;
        let x_of = |t: u64| -> f64 {
            LABEL_PX as f64
                + (t.saturating_sub(self.from_ns) as f64 / span) * self.style.svg_width as f64
        };

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="10">"#
        );
        let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);
        let mut y = 10u32;
        let mut color_idx = 0usize;
        for track in &self.tracks {
            let _ = writeln!(
                svg,
                r#"<text x="4" y="{}" font-weight="bold">{}</text>"#,
                y + self.style.row_height - 4,
                xml_escape(track.name())
            );
            y += self.style.row_height;
            for state in track.states() {
                let color = PALETTE[color_idx % PALETTE.len()];
                color_idx += 1;
                let _ = writeln!(
                    svg,
                    r#"<text x="12" y="{}">{}</text>"#,
                    y + self.style.row_height - 4,
                    xml_escape(state)
                );
                for iv in track.intervals().iter().filter(|iv| iv.state == state) {
                    if iv.end_ns <= self.from_ns || iv.start_ns >= self.to_ns {
                        continue;
                    }
                    let x0 = x_of(iv.start_ns);
                    let x1 = x_of(iv.end_ns.min(self.to_ns)).max(x0 + 0.5);
                    let _ = writeln!(
                        svg,
                        r#"<rect x="{x0:.1}" y="{}" width="{:.1}" height="{}" fill="{color}"/>"#,
                        y + 2,
                        x1 - x0,
                        self.style.row_height - 4,
                    );
                }
                y += self.style.row_height;
            }
        }
        let _ = writeln!(
            svg,
            r#"<text x="{LABEL_PX}" y="{}">{:.4}s</text>"#,
            y + 14,
            self.from_ns as f64 / 1e9
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end">{:.4}s</text>"#,
            LABEL_PX + self.style.svg_width,
            y + 14,
            self.to_ns as f64 / 1e9
        );
        let _ = writeln!(svg, "</svg>");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Interval;

    fn track() -> ActivityTrack {
        ActivityTrack::from_intervals(
            "Master",
            vec![
                Interval {
                    start_ns: 0,
                    end_ns: 250,
                    state: "Send Jobs".into(),
                },
                Interval {
                    start_ns: 250,
                    end_ns: 700,
                    state: "Wait".into(),
                },
                Interval {
                    start_ns: 700,
                    end_ns: 1_000,
                    state: "Send Jobs".into(),
                },
            ],
        )
    }

    #[test]
    fn text_render_shape() {
        let g = Gantt::new(vec![track()], 0, 1_000).with_style(GanttStyle {
            width: 40,
            ..GanttStyle::default()
        });
        let text = g.render_text();
        assert!(text.contains("== Master =="));
        let send_row = text.lines().find(|l| l.contains("Send Jobs |")).unwrap();
        let bars = send_row.matches('#').count();
        // 250/1000 + 300/1000 of 40 columns ≈ 10 + 12 cells.
        assert!(
            (20..=24).contains(&bars),
            "unexpected bar count {bars}\n{text}"
        );
    }

    #[test]
    fn clipping_to_window() {
        let g = Gantt::new(vec![track()], 900, 2_000).with_style(GanttStyle {
            width: 10,
            ..GanttStyle::default()
        });
        let text = g.render_text();
        // Only the tail of the second "Send Jobs" interval shows.
        let send_row = text.lines().find(|l| l.contains("Send Jobs |")).unwrap();
        assert!(send_row.matches('#').count() <= 2, "{text}");
        let wait_row = text.lines().find(|l| l.contains("Wait |")).unwrap();
        assert_eq!(wait_row.matches('#').count(), 0);
    }

    #[test]
    fn svg_contains_rects_and_labels() {
        let g = Gantt::new(vec![track()], 0, 1_000);
        let svg = g.render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Master"));
        assert!(svg.contains("Send Jobs"));
        assert!(
            svg.matches("<rect").count() >= 4,
            "expect background + 3 bars"
        );
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn minimum_one_column_bar() {
        // A 1 ns interval in a 1 s window must still paint one cell.
        let t = ActivityTrack::from_intervals(
            "x",
            vec![Interval {
                start_ns: 500,
                end_ns: 501,
                state: "Blip".into(),
            }],
        );
        let g = Gantt::new(vec![t], 0, 1_000_000_000).with_style(GanttStyle {
            width: 50,
            ..GanttStyle::default()
        });
        let text = g.render_text();
        let row = text.lines().find(|l| l.contains("Blip |")).unwrap();
        assert_eq!(row.matches('#').count(), 1);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_window_panics() {
        Gantt::new(vec![], 5, 5);
    }
}
