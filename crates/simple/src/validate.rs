//! Trace validation: monotonicity and causality.
//!
//! "Global time information is essential for determining the
//! chronological order of events on different nodes" (paper §1). These
//! checks make that argument measurable: a trace stamped by synchronized
//! recorders passes them; the same program observed through free-running
//! clocks does not.

use std::collections::HashMap;

use hybridmon::EventToken;

use crate::trace::Trace;

/// A happens-before rule: for every parameter value, the event with
/// `cause` token must precede the event with `effect` token. The paper's
/// natural instance: "job *n* sent by the master" precedes "job *n*
/// received by the servant" — matched through the 32-bit parameter field
/// carrying the job sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalityRule {
    /// Token of the causally earlier event.
    pub cause: EventToken,
    /// Token of the causally later event.
    pub effect: EventToken,
}

impl CausalityRule {
    /// Creates a rule from raw token values.
    pub fn new(cause: u16, effect: u16) -> Self {
        CausalityRule {
            cause: EventToken::new(cause),
            effect: EventToken::new(effect),
        }
    }
}

/// Result of validating a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Adjacent timestamp inversions in the merged trace.
    pub monotonicity_violations: u64,
    /// `(cause, effect)` pairs observed in the wrong order.
    pub causality_violations: u64,
    /// Pairs checked.
    pub pairs_checked: u64,
    /// Effects that never found a matching cause (instrumentation gaps).
    pub unmatched_effects: u64,
}

impl ValidationReport {
    /// Returns `true` if no violations were found.
    pub fn is_clean(&self) -> bool {
        self.monotonicity_violations == 0 && self.causality_violations == 0
    }
}

/// Counts adjacent timestamp inversions (which [`Trace`] construction
/// normally forbids; applies to traces assembled from foreign data).
pub fn check_monotonic(events: &[crate::trace::Event]) -> u64 {
    events
        .windows(2)
        .filter(|w| w[1].ts_ns < w[0].ts_ns)
        .count() as u64
}

/// Checks happens-before rules over a trace.
///
/// For each rule and each parameter value, the *first* cause event and
/// the *first* effect event with that parameter are paired and their
/// order compared.
///
/// # Examples
///
/// ```
/// use simple::{check_causality, CausalityRule, Event, Trace};
///
/// let trace = Trace::from_unsorted(vec![
///     Event::new(100, 0, 0x01, 7), // master sends job 7
///     Event::new(150, 1, 0x02, 7), // servant receives job 7
/// ]);
/// let report = check_causality(&trace, &[CausalityRule::new(0x01, 0x02)]);
/// assert!(report.is_clean());
/// assert_eq!(report.pairs_checked, 1);
/// ```
pub fn check_causality(trace: &Trace, rules: &[CausalityRule]) -> ValidationReport {
    let mut report = ValidationReport {
        monotonicity_violations: check_monotonic(trace.events()),
        ..ValidationReport::default()
    };
    for rule in rules {
        let mut first_cause: HashMap<u32, u64> = HashMap::new();
        let mut first_effect: HashMap<u32, u64> = HashMap::new();
        for ev in trace.events() {
            if ev.token == rule.cause {
                first_cause.entry(ev.param.value()).or_insert(ev.ts_ns);
            } else if ev.token == rule.effect {
                first_effect.entry(ev.param.value()).or_insert(ev.ts_ns);
            }
        }
        for (param, effect_ts) in &first_effect {
            match first_cause.get(param) {
                Some(cause_ts) => {
                    report.pairs_checked += 1;
                    if effect_ts < cause_ts {
                        report.causality_violations += 1;
                    }
                }
                None => report.unmatched_effects += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;

    #[test]
    fn clean_trace_passes() {
        let t = Trace::from_unsorted(
            (0..10)
                .flat_map(|i| {
                    [
                        Event::new(i * 100, 0, 1, i as u32),
                        Event::new(i * 100 + 50, 1, 2, i as u32),
                    ]
                })
                .collect(),
        );
        let r = check_causality(&t, &[CausalityRule::new(1, 2)]);
        assert!(r.is_clean());
        assert_eq!(r.pairs_checked, 10);
        assert_eq!(r.unmatched_effects, 0);
    }

    #[test]
    fn reversed_pair_is_flagged() {
        // Effect stamped before cause: a skewed-clock artifact.
        let t = Trace::from_unsorted(vec![
            Event::new(200, 0, 1, 5), // cause, late stamp
            Event::new(100, 1, 2, 5), // effect, early stamp
        ]);
        let r = check_causality(&t, &[CausalityRule::new(1, 2)]);
        assert_eq!(r.causality_violations, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn unmatched_effects_counted() {
        let t = Trace::from_unsorted(vec![Event::new(100, 1, 2, 9)]);
        let r = check_causality(&t, &[CausalityRule::new(1, 2)]);
        assert_eq!(r.unmatched_effects, 1);
        assert_eq!(r.pairs_checked, 0);
    }

    #[test]
    fn monotonic_check_on_raw_events() {
        let evs = vec![
            Event::new(10, 0, 1, 0),
            Event::new(5, 0, 1, 0),
            Event::new(20, 0, 1, 0),
        ];
        assert_eq!(check_monotonic(&evs), 1);
        assert_eq!(check_monotonic(&[]), 0);
    }

    #[test]
    fn multiple_rules_accumulate() {
        let t = Trace::from_unsorted(vec![
            Event::new(100, 0, 1, 0),
            Event::new(200, 1, 2, 0),
            Event::new(300, 1, 3, 0),
            Event::new(250, 0, 4, 0), // rule (3,4) violated
        ]);
        let r = check_causality(&t, &[CausalityRule::new(1, 2), CausalityRule::new(3, 4)]);
        assert_eq!(r.pairs_checked, 2);
        assert_eq!(r.causality_violations, 1);
    }
}
