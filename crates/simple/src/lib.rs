//! SIMPLE-style evaluation of event traces.
//!
//! The real SIMPLE package (paper §3.1, reference \[10\]) provides
//! "statistical analysis, visualization, and animation of measurement
//! data". This crate reimplements the subset the paper's evaluation
//! exercises:
//!
//! * a trace data model ([`trace`]) with merging and filtering;
//! * derivation of *activities* from instrumentation events
//!   ([`activity`]): each token marks the **beginning** of a program
//!   phase on its track, exactly like the horizontal bars in the paper's
//!   Figure 6;
//! * Gantt charts ([`gantt`]) — time-state diagrams like Figures 7–9 —
//!   rendered as ASCII for terminals and SVG for documents;
//! * duration and utilization statistics ([`stats`]) — the numbers behind
//!   Figure 10's utilization ladder;
//! * trace validation ([`validate`]): timestamp monotonicity and
//!   send/receive causality checks, used to demonstrate the value of the
//!   ZM4's globally valid timestamps.
//!
//! # Examples
//!
//! ```
//! use simple::{ActivityModel, Event, Trace};
//!
//! // Two instrumentation points: 0x10 begins "Work", 0x11 begins "Wait".
//! let trace = Trace::from_events(vec![
//!     Event::new(1_000, 0, 0x10, 0),
//!     Event::new(5_000, 0, 0x11, 0),
//!     Event::new(6_000, 0, 0x10, 1),
//! ])
//! .unwrap();
//!
//! let mut model = ActivityModel::new();
//! model.state(0x10, "Work").state(0x11, "Wait");
//! let track = model.derive_track("servant", trace.events().iter(), 9_000);
//! assert_eq!(track.intervals().len(), 3);
//! let work: u64 = track.time_in_state("Work");
//! assert_eq!(work, 4_000 + 3_000);
//! ```

pub mod activity;
pub mod gantt;
pub mod io;
pub mod report;
pub mod stats;
pub mod timeline;
pub mod trace;
pub mod validate;

pub use activity::{ActivityModel, ActivityTrack, Interval};
pub use gantt::{Gantt, GanttStyle};
pub use io::{from_csv, to_csv};
pub use report::activity_report;
pub use stats::{state_durations, utilization, UtilizationReport};
pub use timeline::StateTimeline;
pub use trace::{Event, Trace, TraceError};
pub use validate::{check_causality, check_monotonic, CausalityRule, ValidationReport};
