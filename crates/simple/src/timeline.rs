//! Time-series views of activity data — the sampled counterpart of the
//! real SIMPLE package's trace *animation*.
//!
//! A [`StateTimeline`] samples, at a fixed period, how many tracks are in
//! a given state — e.g. "how many servants are Working at time t". That
//! series is what an animation of Figure 8 would render frame by frame,
//! and it is also the basis for the parallelism profile of a run.

use crate::activity::ActivityTrack;

/// A sampled count-over-time series for one state across many tracks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTimeline {
    state: String,
    from_ns: u64,
    period_ns: u64,
    counts: Vec<u32>,
}

impl StateTimeline {
    /// Samples how many of `tracks` are in `state` at each multiple of
    /// `period_ns` within `[from_ns, to_ns)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the period is zero.
    pub fn sample(
        tracks: &[ActivityTrack],
        state: &str,
        from_ns: u64,
        to_ns: u64,
        period_ns: u64,
    ) -> StateTimeline {
        assert!(from_ns < to_ns, "timeline window must be nonempty");
        assert!(period_ns > 0, "sampling period must be nonzero");
        let samples = ((to_ns - from_ns) / period_ns).max(1);
        let counts = (0..samples)
            .map(|k| {
                let t = from_ns + k * period_ns;
                tracks
                    .iter()
                    .filter(|tr| tr.state_at(t) == Some(state))
                    .count() as u32
            })
            .collect();
        StateTimeline {
            state: state.to_owned(),
            from_ns,
            period_ns,
            counts,
        }
    }

    /// The sampled state.
    pub fn state(&self) -> &str {
        &self.state
    }

    /// The sample values.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Time of sample `k`.
    pub fn time_of(&self, k: usize) -> u64 {
        self.from_ns + k as u64 * self.period_ns
    }

    /// Mean concurrent count — the average parallelism in this state.
    pub fn mean(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.counts.iter().map(|&c| c as f64).sum::<f64>() / self.counts.len() as f64
    }

    /// Peak concurrent count.
    pub fn peak(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Renders the series as a small ASCII strip chart, scaled to
    /// `max_count` rows collapsed into intensity glyphs.
    pub fn render_strip(&self, max_count: u32) -> String {
        const GLYPHS: [char; 9] = [' ', '1', '2', '3', '4', '5', '6', '7', '8'];
        let mut out = String::with_capacity(self.counts.len() + 16);
        out.push_str(&format!("{:>12} |", self.state));
        for &c in &self.counts {
            let level = if max_count == 0 {
                0
            } else {
                ((c.min(max_count) as usize) * (GLYPHS.len() - 1)).div_ceil(max_count as usize)
            };
            out.push(GLYPHS[level]);
        }
        out.push('|');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ActivityTrack, Interval};

    fn track(name: &str, work: (u64, u64)) -> ActivityTrack {
        ActivityTrack::from_intervals(
            name,
            vec![Interval {
                start_ns: work.0,
                end_ns: work.1,
                state: "Work".into(),
            }],
        )
    }

    #[test]
    fn counts_concurrent_tracks() {
        let tracks = vec![
            track("a", (0, 500)),
            track("b", (200, 800)),
            track("c", (600, 1_000)),
        ];
        let tl = StateTimeline::sample(&tracks, "Work", 0, 1_000, 100);
        assert_eq!(tl.counts().len(), 10);
        // t=0: a; t=300: a+b; t=700: b+c.
        assert_eq!(tl.counts()[0], 1);
        assert_eq!(tl.counts()[3], 2);
        assert_eq!(tl.counts()[7], 2);
        assert_eq!(tl.peak(), 2);
        assert!(tl.mean() > 1.0 && tl.mean() < 2.0);
        assert_eq!(tl.time_of(3), 300);
    }

    #[test]
    fn strip_chart_renders() {
        let tracks = vec![track("a", (0, 400)), track("b", (0, 400))];
        let tl = StateTimeline::sample(&tracks, "Work", 0, 800, 100);
        let strip = tl.render_strip(2);
        assert!(strip.contains("Work"));
        // First half full intensity, second half blank.
        assert!(strip.contains('8'));
        assert!(strip.ends_with('|'));
    }

    #[test]
    fn empty_state_is_flat_zero() {
        let tracks = vec![track("a", (0, 100))];
        let tl = StateTimeline::sample(&tracks, "Nonexistent", 0, 200, 50);
        assert!(tl.counts().iter().all(|&c| c == 0));
        assert_eq!(tl.peak(), 0);
        assert_eq!(tl.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_panics() {
        StateTimeline::sample(&[], "x", 0, 100, 0);
    }
}
