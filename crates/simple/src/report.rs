//! Textual reports over activity tracks: the statistics tables the real
//! SIMPLE package printed for its users.

use std::fmt::Write as _;

use crate::activity::ActivityTrack;
use crate::stats::state_durations;

/// A per-state duration/occupancy summary for a set of tracks.
///
/// # Examples
///
/// ```
/// use simple::{ActivityTrack, Interval};
/// use simple::report::activity_report;
///
/// let track = ActivityTrack::from_intervals(
///     "Servant 1",
///     vec![
///         Interval { start_ns: 0, end_ns: 600, state: "Work".into() },
///         Interval { start_ns: 600, end_ns: 1_000, state: "Wait".into() },
///     ],
/// );
/// let text = activity_report(&[track], 0, 1_000);
/// assert!(text.contains("Work"));
/// assert!(text.contains("60.0%"));
/// ```
pub fn activity_report(tracks: &[ActivityTrack], from_ns: u64, to_ns: u64) -> String {
    assert!(from_ns <= to_ns, "report window must not be inverted");
    // A zero-width window reports 0% occupancy everywhere rather than
    // dividing by zero (see `stats::utilization`).
    let window = (to_ns - from_ns) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<20} {:>7} {:>9} {:>12} {:>12} {:>12}",
        "track", "state", "visits", "share", "mean", "min", "max"
    );
    for track in tracks {
        for state in track.states() {
            let acc = state_durations(track, state);
            let share = if window > 0.0 {
                track.time_in_state_within(state, from_ns, to_ns) as f64 / window
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "{:<16} {:<20} {:>7} {:>8.1}% {:>12} {:>12} {:>12}",
                truncate(track.name(), 16),
                truncate(state, 20),
                acc.count(),
                share * 100.0,
                fmt_secs(acc.mean()),
                fmt_secs(acc.min().unwrap_or(0.0)),
                fmt_secs(acc.max().unwrap_or(0.0)),
            );
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1}us", secs * 1e6)
    } else {
        format!("{:.0}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Interval;

    fn demo_track() -> ActivityTrack {
        ActivityTrack::from_intervals(
            "Master",
            vec![
                Interval {
                    start_ns: 0,
                    end_ns: 2_000_000,
                    state: "Send Jobs".into(),
                },
                Interval {
                    start_ns: 2_000_000,
                    end_ns: 5_000_000,
                    state: "Wait".into(),
                },
                Interval {
                    start_ns: 5_000_000,
                    end_ns: 6_000_000,
                    state: "Send Jobs".into(),
                },
            ],
        )
    }

    #[test]
    fn report_contains_all_states_and_shares() {
        let text = activity_report(&[demo_track()], 0, 6_000_000);
        assert!(text.contains("Send Jobs"));
        assert!(text.contains("Wait"));
        // Send Jobs: 3ms of 6ms = 50%.
        assert!(text.contains("50.0%"), "{text}");
        // Two visits to Send Jobs.
        let line = text.lines().find(|l| l.contains("Send Jobs")).unwrap();
        assert!(line.contains(" 2 "), "{line}");
    }

    #[test]
    fn durations_format_human_readably() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5us");
        assert_eq!(fmt_secs(25e-9), "25ns");
    }

    #[test]
    fn long_names_are_truncated() {
        assert_eq!(truncate("short", 16), "short");
        let t = truncate("a-very-long-track-name-indeed", 16);
        assert!(t.len() <= 18); // UTF-8 ellipsis
        assert!(t.ends_with('…'));
    }

    #[test]
    fn zero_width_window_reports_zero_shares() {
        let text = activity_report(&[demo_track()], 10, 10);
        // Every share is a finite 0.0%, never NaN.
        assert!(text.contains("0.0%"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_panics() {
        activity_report(&[], 20, 10);
    }
}
