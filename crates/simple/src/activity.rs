//! Deriving program activities from instrumentation events.
//!
//! The paper instruments *phase beginnings* (Figure 6: "Distribute Jobs
//! Begin", "Work Begin", …): each event token switches its track into a
//! new state, which lasts until the next event on the same track. An
//! [`ActivityModel`] maps tokens to state names; [`ActivityModel::derive_track`]
//! turns a token stream into the state intervals a Gantt chart plots.

use std::collections::BTreeMap;

use hybridmon::EventToken;

use crate::trace::Event;

/// One state interval on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Interval start (ns).
    pub start_ns: u64,
    /// Interval end (ns); `end_ns >= start_ns`.
    pub end_ns: u64,
    /// Name of the state.
    pub state: String,
}

impl Interval {
    /// Interval length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Token → state mapping for activity derivation.
///
/// # Examples
///
/// ```
/// use simple::{ActivityModel, Event};
///
/// let mut model = ActivityModel::new();
/// model.state(0x20, "Work").state(0x21, "Wait for Job");
/// let events = [Event::new(100, 0, 0x20, 0), Event::new(400, 0, 0x21, 0)];
/// let track = model.derive_track("Servant 1", events.iter(), 600);
/// assert_eq!(track.intervals()[0].state, "Work");
/// assert_eq!(track.intervals()[0].duration_ns(), 300);
/// assert_eq!(track.intervals()[1].duration_ns(), 200);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ActivityModel {
    states: BTreeMap<EventToken, String>,
}

impl ActivityModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        ActivityModel::default()
    }

    /// Declares that `token` begins state `name`. Returns `self` for
    /// chaining.
    pub fn state(&mut self, token: u16, name: impl Into<String>) -> &mut Self {
        self.states.insert(EventToken::new(token), name.into());
        self
    }

    /// The state a token begins, if declared.
    pub fn state_of(&self, token: EventToken) -> Option<&str> {
        self.states.get(&token).map(String::as_str)
    }

    /// Number of declared states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if no states are declared.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Derives the state intervals of one track from its events
    /// (chronological). Events whose token is not declared are skipped —
    /// they belong to other tracks sharing the same channel. The final
    /// state is closed at `end_ns`.
    pub fn derive_track<'a, I>(
        &self,
        name: impl Into<String>,
        events: I,
        end_ns: u64,
    ) -> ActivityTrack
    where
        I: IntoIterator<Item = &'a Event>,
    {
        let mut intervals: Vec<Interval> = Vec::new();
        let mut current: Option<(u64, &str)> = None;
        for ev in events {
            let Some(state) = self.state_of(ev.token) else {
                continue;
            };
            if let Some((start, prev)) = current.take() {
                intervals.push(Interval {
                    start_ns: start,
                    end_ns: ev.ts_ns.max(start),
                    state: prev.to_owned(),
                });
            }
            current = Some((ev.ts_ns, state));
        }
        if let Some((start, prev)) = current {
            intervals.push(Interval {
                start_ns: start,
                end_ns: end_ns.max(start),
                state: prev.to_owned(),
            });
        }
        ActivityTrack {
            name: name.into(),
            intervals,
        }
    }
}

/// The derived state timeline of one track (one process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityTrack {
    name: String,
    intervals: Vec<Interval>,
}

impl ActivityTrack {
    /// Builds a track directly from intervals (for tests and synthetic
    /// charts).
    ///
    /// # Panics
    ///
    /// Panics if intervals are not chronological and non-overlapping.
    pub fn from_intervals(name: impl Into<String>, intervals: Vec<Interval>) -> Self {
        assert!(
            intervals.windows(2).all(|w| w[0].end_ns <= w[1].start_ns),
            "intervals must be chronological and non-overlapping"
        );
        ActivityTrack {
            name: name.into(),
            intervals,
        }
    }

    /// The track's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The state intervals, chronological.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// All distinct state names, in first-appearance order.
    pub fn states(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for iv in &self.intervals {
            if !seen.contains(&iv.state.as_str()) {
                seen.push(iv.state.as_str());
            }
        }
        seen
    }

    /// Total nanoseconds spent in `state`.
    pub fn time_in_state(&self, state: &str) -> u64 {
        self.intervals
            .iter()
            .filter(|iv| iv.state == state)
            .map(Interval::duration_ns)
            .sum()
    }

    /// Total nanoseconds spent in `state` clipped to `[from_ns, to_ns)`.
    pub fn time_in_state_within(&self, state: &str, from_ns: u64, to_ns: u64) -> u64 {
        self.intervals
            .iter()
            .filter(|iv| iv.state == state)
            .map(|iv| {
                iv.end_ns
                    .min(to_ns)
                    .saturating_sub(iv.start_ns.max(from_ns))
            })
            .sum()
    }

    /// The state active at `t`, if any.
    pub fn state_at(&self, t: u64) -> Option<&str> {
        self.intervals
            .iter()
            .find(|iv| iv.start_ns <= t && t < iv.end_ns)
            .map(|iv| iv.state.as_str())
    }

    /// Track span `(first start, last end)`, or `(0, 0)` when empty.
    pub fn span(&self) -> (u64, u64) {
        match (self.intervals.first(), self.intervals.last()) {
            (Some(a), Some(b)) => (a.start_ns, b.end_ns),
            _ => (0, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> ActivityModel {
        let mut m = ActivityModel::new();
        m.state(1, "A").state(2, "B").state(3, "C");
        m
    }

    #[test]
    fn derives_closed_intervals() {
        let evs = [
            Event::new(10, 0, 1, 0),
            Event::new(30, 0, 2, 0),
            Event::new(60, 0, 1, 0),
        ];
        let track = model().derive_track("t", evs.iter(), 100);
        assert_eq!(track.intervals().len(), 3);
        assert_eq!(track.time_in_state("A"), 20 + 40);
        assert_eq!(track.time_in_state("B"), 30);
        assert_eq!(track.state_at(5), None);
        assert_eq!(track.state_at(35), Some("B"));
        assert_eq!(track.span(), (10, 100));
        assert_eq!(track.states(), vec!["A", "B"]);
    }

    #[test]
    fn skips_foreign_tokens() {
        // Token 99 belongs to a different process on the same channel.
        let evs = [
            Event::new(10, 0, 1, 0),
            Event::new(20, 0, 99, 0),
            Event::new(30, 0, 2, 0),
        ];
        let track = model().derive_track("t", evs.iter(), 50);
        assert_eq!(track.intervals().len(), 2);
        assert_eq!(
            track.time_in_state("A"),
            20,
            "foreign token must not cut A short"
        );
    }

    #[test]
    fn empty_events_empty_track() {
        let track = model().derive_track("t", [].iter(), 100);
        assert!(track.intervals().is_empty());
        assert_eq!(track.span(), (0, 0));
        assert_eq!(track.time_in_state("A"), 0);
    }

    #[test]
    fn clipped_time_in_state() {
        let evs = [Event::new(10, 0, 1, 0), Event::new(110, 0, 2, 0)];
        let track = model().derive_track("t", evs.iter(), 200);
        // "A" spans 10..110; clipped to [50, 80) gives 30.
        assert_eq!(track.time_in_state_within("A", 50, 80), 30);
        // Window fully outside.
        assert_eq!(track.time_in_state_within("A", 150, 180), 0);
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn from_intervals_rejects_overlap() {
        ActivityTrack::from_intervals(
            "x",
            vec![
                Interval {
                    start_ns: 0,
                    end_ns: 10,
                    state: "A".into(),
                },
                Interval {
                    start_ns: 5,
                    end_ns: 15,
                    state: "B".into(),
                },
            ],
        );
    }

    proptest! {
        /// Derived intervals tile the time axis from the first event to
        /// the end: chronological, gap-free and non-overlapping.
        #[test]
        fn intervals_tile_without_gaps(times in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut sorted = times.clone();
            sorted.sort_unstable();
            let evs: Vec<Event> =
                sorted.iter().enumerate().map(|(i, &t)| Event::new(t, 0, 1 + (i % 3) as u16, 0)).collect();
            let end = sorted.last().unwrap() + 100;
            let track = model().derive_track("t", evs.iter(), end);
            prop_assert_eq!(track.intervals().len(), evs.len());
            for w in track.intervals().windows(2) {
                prop_assert_eq!(w[0].end_ns, w[1].start_ns);
            }
            prop_assert_eq!(track.intervals().last().unwrap().end_ns, end);
            let total: u64 = track.intervals().iter().map(Interval::duration_ns).sum();
            prop_assert_eq!(total, end - sorted[0]);
        }
    }
}
