//! The event-trace data model.
//!
//! A [`Trace`] is a time-sorted sequence of instrumentation [`Event`]s.
//! Timestamps are plain `u64` nanoseconds *as claimed by the monitor* —
//! deliberately not [`des::time::SimTime`], because a trace may carry
//! skewed or merged timestamps that no longer correspond to true
//! simulation time.

use std::fmt;

use hybridmon::{EventParam, EventToken};

/// One recorded instrumentation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in nanoseconds on the monitor's (claimed-global) clock.
    pub ts_ns: u64,
    /// The monitored channel (object node) the event came from.
    pub channel: usize,
    /// The event token.
    pub token: EventToken,
    /// The 32-bit parameter.
    pub param: EventParam,
}

impl Event {
    /// Creates an event from raw values.
    pub fn new(ts_ns: u64, channel: usize, token: u16, param: u32) -> Self {
        Event {
            ts_ns,
            channel,
            token: EventToken::new(token),
            param: EventParam::new(param),
        }
    }
}

/// Error constructing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Events were not sorted by timestamp and sorting was not requested.
    Unsorted {
        /// Index of the first out-of-order event.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unsorted { index } => {
                write!(f, "trace events out of order at index {index}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A time-sorted event trace.
///
/// # Examples
///
/// ```
/// use simple::{Event, Trace};
///
/// let t = Trace::from_events(vec![
///     Event::new(10, 0, 1, 0),
///     Event::new(20, 1, 2, 0),
/// ])
/// .unwrap();
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.span(), (10, 20));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Builds a trace from already-sorted events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Unsorted`] if timestamps decrease anywhere.
    pub fn from_events(events: Vec<Event>) -> Result<Self, TraceError> {
        if let Some(i) = events.windows(2).position(|w| w[1].ts_ns < w[0].ts_ns) {
            return Err(TraceError::Unsorted { index: i + 1 });
        }
        Ok(Trace { events })
    }

    /// Builds a trace, sorting the events by `(ts, channel, token)` —
    /// what the CEC does when merging local traces.
    pub fn from_unsorted(mut events: Vec<Event>) -> Self {
        events.sort_by_key(|e| (e.ts_ns, e.channel, e.token.value()));
        Trace { events }
    }

    /// Merges several traces into one global trace.
    pub fn merge<I>(traces: I) -> Self
    where
        I: IntoIterator<Item = Trace>,
    {
        let events: Vec<Event> = traces.into_iter().flat_map(|t| t.events).collect();
        Trace::from_unsorted(events)
    }

    /// The events, in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// First and last timestamps; `(0, 0)` for an empty trace.
    pub fn span(&self) -> (u64, u64) {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => (a.ts_ns, b.ts_ns),
            _ => (0, 0),
        }
    }

    /// A sub-trace containing only events matching `pred`.
    pub fn filter<F>(&self, pred: F) -> Trace
    where
        F: Fn(&Event) -> bool,
    {
        Trace {
            events: self.events.iter().copied().filter(|e| pred(e)).collect(),
        }
    }

    /// A sub-trace restricted to one channel.
    pub fn channel(&self, channel: usize) -> Trace {
        self.filter(|e| e.channel == channel)
    }

    /// A sub-trace restricted to the time window `[from_ns, to_ns)`.
    pub fn window(&self, from_ns: u64, to_ns: u64) -> Trace {
        self.filter(|e| (from_ns..to_ns).contains(&e.ts_ns))
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<Event> for Trace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        self.events.extend(iter);
        self.events
            .sort_by_key(|e| (e.ts_ns, e.channel, e.token.value()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_unsorted() {
        let err =
            Trace::from_events(vec![Event::new(20, 0, 1, 0), Event::new(10, 0, 2, 0)]).unwrap_err();
        assert_eq!(err, TraceError::Unsorted { index: 1 });
        assert!(err.to_string().contains("index 1"));
    }

    #[test]
    fn from_unsorted_sorts() {
        let t = Trace::from_unsorted(vec![Event::new(20, 0, 1, 0), Event::new(10, 0, 2, 0)]);
        assert_eq!(t.events()[0].ts_ns, 10);
    }

    #[test]
    fn merge_interleaves() {
        let a = Trace::from_events(vec![Event::new(10, 0, 1, 0), Event::new(30, 0, 1, 0)]).unwrap();
        let b = Trace::from_events(vec![Event::new(20, 1, 2, 0)]).unwrap();
        let m = Trace::merge([a, b]);
        let ts: Vec<u64> = m.events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn filters_and_windows() {
        let t = Trace::from_unsorted(
            (0..10)
                .map(|i| Event::new(i * 10, (i % 2) as usize, i as u16, 0))
                .collect(),
        );
        assert_eq!(t.channel(0).len(), 5);
        assert_eq!(t.window(20, 50).len(), 3);
        let (a, b) = t.span();
        assert_eq!((a, b), (0, 90));
        assert!(Trace::default().is_empty());
        assert_eq!(Trace::default().span(), (0, 0));
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..5).map(|i| Event::new(100 - i, 0, 0, 0)).collect();
        assert!(t.events().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    proptest! {
        #[test]
        fn merge_preserves_all_events(
            xs in proptest::collection::vec(0u64..1000, 0..50),
            ys in proptest::collection::vec(0u64..1000, 0..50),
        ) {
            let a: Trace = xs.iter().map(|&t| Event::new(t, 0, 1, 0)).collect();
            let b: Trace = ys.iter().map(|&t| Event::new(t, 1, 2, 0)).collect();
            let m = Trace::merge([a, b]);
            prop_assert_eq!(m.len(), xs.len() + ys.len());
            prop_assert!(m.events().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        }
    }
}
