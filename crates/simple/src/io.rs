//! Trace import/export.
//!
//! The real SIMPLE package worked on trace *files* shipped from the
//! monitor agents' disks. This module provides the equivalent
//! interchange format: a plain CSV with one event per line,
//!
//! ```text
//! ts_ns,channel,token,param
//! 1200,0,0x0101,1
//! ```
//!
//! so traces can be archived, diffed, or processed by external tooling.

use std::fmt::Write as _;

use crate::trace::{Event, Trace};

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    message: String,
}

impl ParseTraceError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseTraceError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line the error occurred on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes a trace to CSV (with header).
///
/// # Examples
///
/// ```
/// use simple::io::{from_csv, to_csv};
/// use simple::{Event, Trace};
///
/// let trace = Trace::from_unsorted(vec![Event::new(1200, 0, 0x0101, 1)]);
/// let text = to_csv(&trace);
/// assert_eq!(from_csv(&text).unwrap(), trace);
/// ```
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 24 + 32);
    out.push_str("ts_ns,channel,token,param\n");
    for e in trace.events() {
        let _ = writeln!(
            out,
            "{},{},0x{:04X},{}",
            e.ts_ns,
            e.channel,
            e.token.value(),
            e.param.value()
        );
    }
    out
}

/// Parses a CSV trace (header optional). Events are sorted on load, as
/// the CEC would re-merge them.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line for malformed
/// rows.
pub fn from_csv(text: &str) -> Result<Trace, ParseTraceError> {
    let mut events = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("ts_ns") || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |name: &str| {
            fields
                .next()
                .map(str::trim)
                .ok_or_else(|| ParseTraceError::new(line_no, format!("missing field '{name}'")))
        };
        let ts: u64 = next("ts_ns")?
            .parse()
            .map_err(|_| ParseTraceError::new(line_no, "bad ts_ns"))?;
        let channel: usize = next("channel")?
            .parse()
            .map_err(|_| ParseTraceError::new(line_no, "bad channel"))?;
        let token_str = next("token")?;
        let token = if let Some(hex) = token_str.strip_prefix("0x") {
            u16::from_str_radix(hex, 16)
                .map_err(|_| ParseTraceError::new(line_no, "bad hex token"))?
        } else {
            token_str
                .parse()
                .map_err(|_| ParseTraceError::new(line_no, "bad token"))?
        };
        let param: u32 = next("param")?
            .parse()
            .map_err(|_| ParseTraceError::new(line_no, "bad param"))?;
        if let Some(extra) = fields.next() {
            return Err(ParseTraceError::new(
                line_no,
                format!("unexpected field '{extra}'"),
            ));
        }
        events.push(Event::new(ts, channel, token, param));
    }
    Ok(Trace::from_unsorted(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small() {
        let t = Trace::from_unsorted(vec![
            Event::new(100, 0, 0x0101, 1),
            Event::new(50, 3, 0x0203, 0xFFFF_FFFF),
        ]);
        let parsed = from_csv(&to_csv(&t)).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn accepts_decimal_tokens_and_comments() {
        let text = "# archived trace\n100,1,257,9\n";
        let t = from_csv(text).unwrap();
        assert_eq!(t.events()[0].token.value(), 257);
        assert_eq!(t.events()[0].channel, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = from_csv("ts_ns,channel,token,param\n1,2\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("missing field"));
        let err = from_csv("abc,0,1,2\n").unwrap_err();
        assert!(err.to_string().contains("bad ts_ns"));
        let err = from_csv("1,0,1,2,3\n").unwrap_err();
        assert!(err.to_string().contains("unexpected field"));
    }

    proptest! {
        #[test]
        fn roundtrip_random(
            rows in proptest::collection::vec(
                (any::<u64>(), 0usize..64, any::<u16>(), any::<u32>()),
                0..100,
            )
        ) {
            let t = Trace::from_unsorted(
                rows.iter().map(|&(ts, ch, tok, p)| Event::new(ts, ch, tok, p)).collect(),
            );
            prop_assert_eq!(from_csv(&to_csv(&t)).unwrap(), t);
        }
    }
}
