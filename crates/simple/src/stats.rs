//! Utilization and duration statistics over activity tracks.
//!
//! These are the numbers behind the paper's headline results: "the
//! servants are only working about 15 % of the total time" (Fig. 8) and
//! the 15 % → 29 % → 46 % → 60 % ladder of Fig. 10.

use des::stats::Accumulator;
use des::time::SimDuration;

use crate::activity::ActivityTrack;

/// The fraction of `[from_ns, to_ns)` a track spends in `state`.
///
/// A zero-width window (`from_ns == to_ns`) has spent no time in any
/// state and reports 0.0 — the finite answer, not `0.0 / 0.0 = NaN`.
/// Instantaneous windows arise naturally from degenerate runs (a single
/// trace event, or a phase that begins and ends on the same timestamp)
/// and must not poison downstream run records.
///
/// # Panics
///
/// Panics if the window is inverted (`from_ns > to_ns`).
///
/// # Examples
///
/// ```
/// use simple::{utilization, ActivityTrack, Interval};
///
/// let t = ActivityTrack::from_intervals(
///     "servant",
///     vec![Interval { start_ns: 0, end_ns: 300, state: "Work".into() }],
/// );
/// assert_eq!(utilization(&t, "Work", 0, 1_000), 0.3);
/// assert_eq!(utilization(&t, "Work", 100, 100), 0.0);
/// ```
pub fn utilization(track: &ActivityTrack, state: &str, from_ns: u64, to_ns: u64) -> f64 {
    assert!(from_ns <= to_ns, "utilization window must not be inverted");
    if from_ns == to_ns {
        return 0.0;
    }
    track.time_in_state_within(state, from_ns, to_ns) as f64 / (to_ns - from_ns) as f64
}

/// Distribution of the durations of every visit to `state`.
pub fn state_durations(track: &ActivityTrack, state: &str) -> Accumulator {
    let mut acc = Accumulator::new();
    for iv in track.intervals().iter().filter(|iv| iv.state == state) {
        acc.record_duration(SimDuration::from_nanos(iv.duration_ns()));
    }
    acc
}

/// Utilization of one state across a group of tracks — e.g. "Work"
/// across all servants, the paper's servant-utilization metric.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// The state measured.
    pub state: String,
    /// Per-track utilization in `[0, 1]`, in track order.
    pub per_track: Vec<(String, f64)>,
    /// Mean utilization across tracks.
    pub mean: f64,
    /// The measurement window.
    pub window: (u64, u64),
}

impl UtilizationReport {
    /// Measures `state` across `tracks` over `[from_ns, to_ns)`.
    ///
    /// A zero-width window reports 0.0 everywhere (see [`utilization`]).
    ///
    /// # Panics
    ///
    /// Panics if `tracks` is empty or the window is inverted.
    pub fn measure(
        tracks: &[ActivityTrack],
        state: &str,
        from_ns: u64,
        to_ns: u64,
    ) -> UtilizationReport {
        assert!(!tracks.is_empty(), "utilization needs at least one track");
        let per_track: Vec<(String, f64)> = tracks
            .iter()
            .map(|t| (t.name().to_owned(), utilization(t, state, from_ns, to_ns)))
            .collect();
        let mean = per_track.iter().map(|(_, u)| u).sum::<f64>() / per_track.len() as f64;
        UtilizationReport {
            state: state.to_owned(),
            per_track,
            mean,
            window: (from_ns, to_ns),
        }
    }

    /// Mean utilization as a percentage.
    pub fn mean_percent(&self) -> f64 {
        self.mean * 100.0
    }
}

impl std::fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "utilization of '{}' over [{:.4}s, {:.4}s): mean {:.1}%",
            self.state,
            self.window.0 as f64 / 1e9,
            self.window.1 as f64 / 1e9,
            self.mean_percent()
        )?;
        for (name, u) in &self.per_track {
            writeln!(f, "  {name:<20} {:5.1}%", u * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Interval;

    fn work_track(name: &str, busy: &[(u64, u64)]) -> ActivityTrack {
        let mut intervals = Vec::new();
        for &(a, b) in busy {
            intervals.push(Interval {
                start_ns: a,
                end_ns: b,
                state: "Work".into(),
            });
        }
        ActivityTrack::from_intervals(name, intervals)
    }

    #[test]
    fn utilization_clips_to_window() {
        let t = work_track("s", &[(0, 500), (900, 1_200)]);
        // Window [100, 1000): Work covers 100..500 and 900..1000 = 500.
        assert!((utilization(&t, "Work", 100, 1_000) - 500.0 / 900.0).abs() < 1e-12);
        assert_eq!(utilization(&t, "Idle", 0, 1_000), 0.0);
    }

    #[test]
    fn report_means_across_tracks() {
        let tracks = vec![
            work_track("s1", &[(0, 300)]),
            work_track("s2", &[(0, 600)]),
            work_track("s3", &[(0, 900)]),
        ];
        let r = UtilizationReport::measure(&tracks, "Work", 0, 1_000);
        assert!((r.mean - 0.6).abs() < 1e-12);
        assert_eq!(r.per_track.len(), 3);
        assert!((r.mean_percent() - 60.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("60.0%"));
        assert!(text.contains("s2"));
    }

    #[test]
    fn durations_distribution() {
        let t = work_track("s", &[(0, 100), (200, 500), (600, 800)]);
        let acc = state_durations(&t, "Work");
        assert_eq!(acc.count(), 3);
        assert!((acc.mean() - 200e-9).abs() < 1e-15);
        assert_eq!(acc.max(), Some(300e-9));
    }

    /// The zero-width-window regression: empty and instantaneous windows
    /// must yield finite (zero) statistics, never `0/0 = NaN` — a NaN
    /// here used to propagate into run-record utilization fields.
    #[test]
    fn zero_width_window_is_finite() {
        let t = work_track("s", &[(0, 500)]);
        let u = utilization(&t, "Work", 100, 100);
        assert!(u.is_finite());
        assert_eq!(u, 0.0);
        // Same through the report aggregation path.
        let r = UtilizationReport::measure(&[t], "Work", 100, 100);
        assert!(r.mean.is_finite());
        assert_eq!(r.mean, 0.0);
        assert_eq!(r.mean_percent(), 0.0);
        // And for a track with no intervals at all.
        let empty = utilization(&work_track("e", &[]), "Work", 10, 10);
        assert_eq!(empty, 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_window_panics() {
        utilization(&work_track("s", &[]), "Work", 20, 10);
    }

    #[test]
    #[should_panic(expected = "at least one track")]
    fn empty_tracks_panics() {
        UtilizationReport::measure(&[], "Work", 0, 10);
    }
}
