//! `harness` — run named experiment sweeps in parallel.
//!
//! ```text
//! harness list
//! harness sweep <name> [--scale paper|quick] [--workers N] [--seed S]
//!                      [--shards K] [--engine-shards K] [--horizon-secs T]
//!                      [--scheduler SPEC] [--out PATH]
//!                      [--check-digests FILE] [--write-digests FILE]
//! harness bench [names…] [--scale paper|quick] [--workers N] [--seed S]
//!                        [--shards K] [--engine-shards K]
//!                        [--scheduler SPEC] [--out PATH]
//!                        [--check-digests FILE]
//! harness compare <BASELINE.json> <CANDIDATE.json>
//! harness verify [name] [--scale paper|quick] [--seed S]
//!                       [--scheduler SPEC] [--json PATH] [--sarif PATH]
//!                       [--races]
//! ```
//!
//! `--shards K` runs every job's monitor plane on `K` observer shards
//! overlapped with the kernel. `--engine-shards K` packs a multi-cluster
//! machine's per-cluster engine shards onto `K` worker threads
//! (single-cluster shapes ignore it). Both are behaviourally invisible —
//! trace digests stay bit-identical to the sequential oracle for any
//! `K` — so the flags only change wall-clock numbers.
//!
//! `--scheduler SPEC` overrides the kernel scheduling policy on every
//! run: `rr` (cooperative round-robin, the default), `preempt[:us]`
//! (fixed-priority with a quantum), `cfs[:us]` (vruntime fair), or
//! `fuzz[:base[:seed]]` (seeded perturbation of a base policy).
//! Scheduling — unlike sharding — is behaviourally *visible*: digests
//! only match goldens recorded under the same policy, and artifacts
//! record the policy so `compare` can refuse cross-scheduler diffs.
//!
//! `bench` runs the named sweeps (default: `fig10 smoke`) and writes a
//! single dated baseline artifact (`artifacts/BENCH_<date>.json`) with
//! per-run events/sec and wall time, for cross-commit comparison.
//!
//! `compare` contrasts two artifacts run by run (digests must match;
//! throughput deltas are printed). Artifacts written at a different
//! schema version are refused — regenerate them instead of comparing
//! fields whose meaning changed.
//!
//! `verify` executes a sweep (default: `smoke`) and validates every
//! recorded trace against the protocol model checker's proven orderings
//! with the happens-before engine. `ANALYZER_POLICY=off|warn|deny`
//! overrides each run's pre-flight policy; denied runs are all reported
//! before the command fails. `--races` adds the DPOR race cross-check:
//! every `AN-RACE-*` witness must replay against the model and be
//! confirmed concurrent by the vector-clock engine, and a dynamic race
//! in a statically race-free shape fails verification. Each run also
//! gets a scheduler cross-check (`AN-RACE-004`): preemption tokens
//! recorded under round-robin, or a preemptive/CFS policy that never
//! preempts an instrumented workload, contradict the static scheduling
//! verdict and fail verification. The `sched` sweep exercises exactly
//! this reconciliation across all shipped policies (plus two
//! fault-injection rows whose measurement-plane checks are
//! informational only). Every ray run
//! additionally has its recorded credit accounting checked against the
//! structural layer's P-invariant certificate (`AN-STRUCT-001`) — a
//! trace with more jobs outstanding than window credits exist
//! contradicts the algebra and fails verification.
//!
//! Exit codes: `0` all runs completed and digests (if checked) match;
//! `1` a proven ordering was violated (`verify`); `2` at least one run
//! was truncated; `3` digest mismatch; `4` pre-flight policy denied a
//! run (`verify`); `64` usage error.

use std::path::PathBuf;
use std::process::ExitCode;

use harness::{default_workers, run_sweep, sweeps, BenchReport, Scale, VerifyOptions};
use suprenum::SchedulerKind;

const USAGE: &str = "usage:
  harness list
  harness sweep <name> [--scale paper|quick] [--workers N] [--seed S]
                       [--shards K] [--engine-shards K] [--horizon-secs T]
                       [--scheduler SPEC] [--out PATH]
                       [--check-digests FILE] [--write-digests FILE]
  harness bench [names…] [--scale paper|quick] [--workers N] [--seed S]
                         [--shards K] [--engine-shards K]
                         [--scheduler SPEC] [--out PATH]
                         [--check-digests FILE]
  harness compare <BASELINE.json> <CANDIDATE.json>
  harness verify [name] [--scale paper|quick] [--seed S]
                        [--scheduler SPEC] [--json PATH] [--sarif PATH]
                        [--races]

--horizon-secs caps every run's simulated-time budget (a too-small cap
truncates the runs; the sweep then exits 2 and marks each record).

--shards runs each job's monitor plane on K observer shards overlapped
with the kernel; --engine-shards packs a multi-cluster machine's
per-cluster engine shards onto K worker threads. Both keep digests
bit-identical to the sequential oracle.

--scheduler overrides the kernel scheduling policy on every run:
rr | preempt[:quantum_us] | cfs[:quantum_us] | fuzz[:base[:seed]].
Unlike sharding this is behaviourally visible — only compare digests
recorded under the same policy. Artifacts record the policy.

bench defaults to the fig10 and smoke sweeps and writes the combined
baseline to artifacts/BENCH_<date>.json.

compare contrasts two artifacts run by run; artifacts from another
schema version are refused.

verify executes a sweep (default smoke) and checks every trace against
the model checker's proven orderings and the structural layer's
P-invariant credit certificates (ANALYZER_POLICY=off|warn|deny
overrides the per-run pre-flight policy); --races adds the DPOR race
cross-check with witness replay and vector-clock confirmation.

sweeps: fig10, bundle, window, seeds, smoke, jacobi, scaling, sched";

struct Args {
    name: String,
    scale: Scale,
    workers: usize,
    seed: u64,
    shards: Option<usize>,
    engine_shards: Option<usize>,
    horizon_secs: Option<u64>,
    scheduler: Option<SchedulerKind>,
    out: Option<PathBuf>,
    check_digests: Option<PathBuf>,
    write_digests: Option<PathBuf>,
}

fn parse_scheduler(spec: &str) -> Result<SchedulerKind, String> {
    SchedulerKind::parse(spec).map_err(|e| format!("--scheduler: {e}"))
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("harness: {msg}\n\n{USAGE}");
    ExitCode::from(64)
}

fn parse_sweep_args(rest: &[String]) -> Result<Args, String> {
    let mut it = rest.iter();
    let name = it.next().ok_or("missing sweep name")?.clone();
    let mut args = Args {
        name,
        scale: Scale::Paper,
        workers: default_workers(),
        seed: 1992,
        shards: None,
        engine_shards: None,
        horizon_secs: None,
        scheduler: None,
        out: None,
        check_digests: None,
        write_digests: None,
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--scale" => {
                let v = value()?;
                args.scale = Scale::parse(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
            }
            "--workers" => {
                args.workers = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--seed" => {
                args.seed = value()?.parse().map_err(|_| "--seed needs an integer")?;
            }
            "--shards" => {
                args.shards = Some(
                    value()?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or("--shards needs a positive integer")?,
                );
            }
            "--engine-shards" => {
                args.engine_shards = Some(
                    value()?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or("--engine-shards needs a positive integer")?,
                );
            }
            "--horizon-secs" => {
                args.horizon_secs = Some(
                    value()?
                        .parse()
                        .map_err(|_| "--horizon-secs needs an integer")?,
                );
            }
            "--scheduler" => args.scheduler = Some(parse_scheduler(value()?)?),
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--check-digests" => args.check_digests = Some(PathBuf::from(value()?)),
            "--write-digests" => args.write_digests = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

struct BenchArgs {
    names: Vec<String>,
    scale: Scale,
    workers: usize,
    seed: u64,
    shards: Option<usize>,
    engine_shards: Option<usize>,
    scheduler: Option<SchedulerKind>,
    out: Option<PathBuf>,
    check_digests: Option<PathBuf>,
}

fn parse_bench_args(rest: &[String]) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        names: Vec::new(),
        scale: Scale::Paper,
        workers: default_workers(),
        seed: 1992,
        shards: None,
        engine_shards: None,
        scheduler: None,
        out: None,
        check_digests: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value()?;
                args.scale = Scale::parse(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
            }
            "--workers" => {
                args.workers = value()?
                    .parse::<usize>()
                    .ok()
                    .filter(|&w| w > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--seed" => {
                args.seed = value()?.parse().map_err(|_| "--seed needs an integer")?;
            }
            "--shards" => {
                args.shards = Some(
                    value()?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or("--shards needs a positive integer")?,
                );
            }
            "--engine-shards" => {
                args.engine_shards = Some(
                    value()?
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s > 0)
                        .ok_or("--engine-shards needs a positive integer")?,
                );
            }
            "--scheduler" => args.scheduler = Some(parse_scheduler(value()?)?),
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--check-digests" => args.check_digests = Some(PathBuf::from(value()?)),
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            name => args.names.push(name.to_owned()),
        }
    }
    if args.names.is_empty() {
        args.names = vec!["fig10".to_owned(), "smoke".to_owned()];
    }
    Ok(args)
}

struct VerifyArgs {
    name: String,
    scale: Scale,
    seed: u64,
    json: Option<PathBuf>,
    sarif: Option<PathBuf>,
    races: bool,
    scheduler: Option<SchedulerKind>,
}

fn parse_verify_args(rest: &[String]) -> Result<VerifyArgs, String> {
    let mut args = VerifyArgs {
        name: "smoke".to_owned(),
        scale: Scale::Quick,
        seed: 1992,
        json: None,
        sarif: None,
        races: false,
        scheduler: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value()?;
                args.scale = Scale::parse(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                args.seed = value()?.parse().map_err(|_| "--seed needs an integer")?;
            }
            "--json" => args.json = Some(PathBuf::from(value()?)),
            "--sarif" => args.sarif = Some(PathBuf::from(value()?)),
            "--races" => args.races = true,
            "--scheduler" => args.scheduler = Some(parse_scheduler(value()?)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            name => args.name = name.to_owned(),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("list") => {
            println!("available sweeps:");
            println!("  fig10   the version ladder V1-V4 (paper: 15/29/46/60 %)");
            println!("  bundle  ray-bundle size ablation on version 4");
            println!("  window  window-credit ablation on version 3");
            println!("  seeds   version 4 across five seeds (stability)");
            println!("  smoke   tiny CI sweep; digests are the determinism golden");
            println!("  jacobi  SPMD Jacobi worker ladder (second stock workload)");
            println!("  scaling 16/32/64-node ladders (ray + jacobi) over 1-4 clusters");
            println!(
                "  sched   fig10 ladder + mailbox synchrony under every scheduler \
                 policy (rr/preempt/cfs/fuzz) plus probe-fault rows"
            );
            ExitCode::SUCCESS
        }
        Some("sweep") => {
            let args = match parse_sweep_args(&argv[1..]) {
                Ok(a) => a,
                Err(e) => return usage_error(&e),
            };
            let Some(mut sweep) = sweeps::by_name(&args.name, args.scale, args.seed) else {
                return usage_error(&format!("unknown sweep '{}'", args.name));
            };
            if let Some(secs) = args.horizon_secs {
                for spec in &mut sweep.runs {
                    spec.job
                        .override_horizon(des::time::SimTime::from_secs(secs));
                }
            }
            if let Some(shards) = args.shards {
                for spec in &mut sweep.runs {
                    spec.job.override_shards(shards);
                }
            }
            if let Some(engine_shards) = args.engine_shards {
                for spec in &mut sweep.runs {
                    spec.job.override_engine_shards(engine_shards);
                }
            }
            if let Some(scheduler) = &args.scheduler {
                for spec in &mut sweep.runs {
                    spec.job.override_scheduler(scheduler.clone());
                }
            }
            eprintln!(
                "running sweep '{}' ({} runs) on {} worker(s), {} monitor shard(s), \
                 {} engine shard(s){}…",
                sweep.name,
                sweep.runs.len(),
                args.workers,
                args.shards.unwrap_or(1),
                args.engine_shards.unwrap_or(1),
                match &args.scheduler {
                    Some(s) => format!(", scheduler {s}"),
                    None => String::new(),
                }
            );
            let report = run_sweep(&sweep, args.workers);
            print!("{}", report.render_table());

            let out = args
                .out
                .unwrap_or_else(|| PathBuf::from(format!("artifacts/{}.json", report.sweep)));
            match report.write_artifact(&out) {
                Ok(path) => eprintln!("artifact written to {}", path.display()),
                Err(e) => {
                    eprintln!("harness: cannot write artifact {}: {e}", out.display());
                    return ExitCode::from(64);
                }
            }

            if let Some(path) = &args.write_digests {
                if let Err(e) = std::fs::write(path, report.digest_lines()) {
                    eprintln!("harness: cannot write digests {}: {e}", path.display());
                    return ExitCode::from(64);
                }
                eprintln!("digests written to {}", path.display());
            }

            let mut code = report.exit_code();
            if let Some(path) = &args.check_digests {
                let golden = match std::fs::read_to_string(path) {
                    Ok(g) => g,
                    Err(e) => {
                        eprintln!("harness: cannot read goldens {}: {e}", path.display());
                        return ExitCode::from(64);
                    }
                };
                match report.check_digests(&golden) {
                    Ok(()) => eprintln!(
                        "digests match the goldens in {} — deterministic",
                        path.display()
                    ),
                    Err(errors) => {
                        for e in errors {
                            eprintln!("digest check: {e}");
                        }
                        code = 3;
                    }
                }
            }
            if code == 2 {
                eprintln!(
                    "harness: {} run(s) truncated — exiting nonzero, the sweep is not a \
                     valid measurement",
                    report.truncated_runs().len()
                );
            }
            ExitCode::from(u8::try_from(code).unwrap_or(1))
        }
        Some("bench") => {
            let args = match parse_bench_args(&argv[1..]) {
                Ok(a) => a,
                Err(e) => return usage_error(&e),
            };
            let mut reports = Vec::with_capacity(args.names.len());
            for name in &args.names {
                let Some(mut sweep) = sweeps::by_name(name, args.scale, args.seed) else {
                    return usage_error(&format!("unknown sweep '{name}'"));
                };
                if let Some(shards) = args.shards {
                    for spec in &mut sweep.runs {
                        spec.job.override_shards(shards);
                    }
                }
                if let Some(engine_shards) = args.engine_shards {
                    for spec in &mut sweep.runs {
                        spec.job.override_engine_shards(engine_shards);
                    }
                }
                if let Some(scheduler) = &args.scheduler {
                    for spec in &mut sweep.runs {
                        spec.job.override_scheduler(scheduler.clone());
                    }
                }
                eprintln!(
                    "benching sweep '{}' ({} runs) on {} worker(s)…",
                    sweep.name,
                    sweep.runs.len(),
                    args.workers
                );
                let report = run_sweep(&sweep, args.workers);
                print!("{}", report.render_table());
                reports.push(report);
            }
            let bench = BenchReport {
                date: harness::utc_date_string(),
                reports,
            };

            let out = args
                .out
                .unwrap_or_else(|| PathBuf::from(format!("artifacts/BENCH_{}.json", bench.date)));
            match bench.write_artifact(&out) {
                Ok(path) => eprintln!("baseline written to {}", path.display()),
                Err(e) => {
                    eprintln!("harness: cannot write baseline {}: {e}", out.display());
                    return ExitCode::from(64);
                }
            }

            let mut code = bench.exit_code();
            if let Some(path) = &args.check_digests {
                let golden = match std::fs::read_to_string(path) {
                    Ok(g) => g,
                    Err(e) => {
                        eprintln!("harness: cannot read goldens {}: {e}", path.display());
                        return ExitCode::from(64);
                    }
                };
                match bench.check_digests(&golden) {
                    Ok(()) => eprintln!(
                        "digests match the goldens in {} — deterministic",
                        path.display()
                    ),
                    Err(errors) => {
                        for e in errors {
                            eprintln!("digest check: {e}");
                        }
                        code = 3;
                    }
                }
            }
            if code == 2 {
                eprintln!("harness: truncated run(s) — the baseline is not a valid measurement");
            }
            ExitCode::from(u8::try_from(code).unwrap_or(1))
        }
        Some("compare") => {
            let [baseline, candidate] = &argv[1..] else {
                return usage_error("compare needs exactly a baseline and a candidate artifact");
            };
            let read = |p: &str| {
                std::fs::read_to_string(p).map_err(|e| format!("cannot read artifact {p}: {e}"))
            };
            let (base, cand) = match (read(baseline), read(candidate)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => return usage_error(&e),
            };
            match harness::compare_artifacts(&base, &cand) {
                Ok(table) => {
                    println!("comparing {baseline} (baseline) vs {candidate} (candidate)");
                    print!("{table}");
                    ExitCode::SUCCESS
                }
                Err(errors) => {
                    for e in errors {
                        eprintln!("compare: {e}");
                    }
                    ExitCode::from(3)
                }
            }
        }
        Some("verify") => {
            let args = match parse_verify_args(&argv[1..]) {
                Ok(a) => a,
                Err(e) => return usage_error(&e),
            };
            let Some(sweep) = sweeps::by_name(&args.name, args.scale, args.seed) else {
                return usage_error(&format!("unknown sweep '{}'", args.name));
            };
            eprintln!(
                "verifying sweep '{}' ({} runs) against the protocol models{}…",
                sweep.name,
                sweep.runs.len(),
                match &args.scheduler {
                    Some(s) => format!(" under scheduler {s}"),
                    None => String::new(),
                }
            );
            let opts = VerifyOptions {
                races: args.races,
                scheduler: args.scheduler.clone(),
            };
            let report = harness::verify_sweep_opts(&sweep, &opts);
            for r in report
                .run_reports
                .iter()
                .chain(&report.race_reports)
                .chain(&report.structural_reports)
                .chain(&report.sched_reports)
            {
                print!("{}", r.render());
                println!();
            }
            for label in &report.truncated {
                eprintln!(
                    "note: run '{label}' did not complete; its (partial) trace was \
                     still validated"
                );
            }
            for label in &report.denied {
                eprintln!("DENIED: pre-flight policy refused run '{label}'");
            }

            let all_reports: Vec<analyzer::Report> = report
                .run_reports
                .iter()
                .chain(&report.race_reports)
                .chain(&report.structural_reports)
                .chain(&report.sched_reports)
                .cloned()
                .collect();
            if let Some(path) = &args.json {
                if let Err(e) = std::fs::write(path, analyzer::reports_json(&all_reports)) {
                    eprintln!("harness: cannot write {}: {e}", path.display());
                    return ExitCode::from(64);
                }
                eprintln!("JSON written to {}", path.display());
            }
            if let Some(path) = &args.sarif {
                if let Err(e) = std::fs::write(path, analyzer::sarif(&all_reports)) {
                    eprintln!("harness: cannot write {}: {e}", path.display());
                    return ExitCode::from(64);
                }
                eprintln!("SARIF written to {}", path.display());
            }

            match report.exit_code() {
                0 => eprintln!(
                    "verified: every proven ordering and structural certificate holds in \
                     all {} trace(s){}",
                    report.run_reports.len(),
                    if args.races {
                        " and every race witness cross-checks"
                    } else {
                        ""
                    }
                ),
                1 => eprintln!(
                    "harness: {} happens-before violation(s), {} race inconsistenc(ies), \
                     {} certificate violation(s), {} scheduler inconsistenc(ies) — the \
                     traces contradict the protocol model",
                    report.violations(),
                    report.race_inconsistencies(),
                    report.certificate_violations(),
                    report.sched_inconsistencies()
                ),
                4 => eprintln!(
                    "harness: pre-flight policy denied {} run(s)",
                    report.denied.len()
                ),
                _ => {}
            }
            ExitCode::from(report.exit_code())
        }
        Some(other) => usage_error(&format!("unknown command '{other}'")),
        None => usage_error("missing command"),
    }
}
