//! Minimal JSON emission.
//!
//! The build environment has no registry access, so the artifact format
//! is produced by hand: a tiny escaping writer plus an object builder.
//! Only the subset the sweep artifact needs is implemented — string,
//! integer, float, bool, null, arrays of pre-rendered values.

use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: `null` for non-finite numbers
/// (JSON has no NaN/Infinity).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// An object under construction. Fields keep insertion order.
#[derive(Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Adds a raw, already-rendered JSON value.
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(value)))
    }

    /// Adds an integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field (`null` if non-finite).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, float(value))
    }

    /// Adds an optional float field (`null` when absent or non-finite).
    pub fn opt_f64(&mut self, key: &str, value: Option<f64>) -> &mut Self {
        match value {
            Some(v) => self.f64(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object with the given indentation depth (two spaces
    /// per level).
    pub fn render(&self, indent: usize) -> String {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}\"{}\": {v}", escape(k)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n{body}\n{close}}}")
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array(items: &[String], indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_owned();
    }
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    let body = items
        .iter()
        .map(|v| format!("{pad}{v}"))
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n{close}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(float(f64::NAN), "null");
        assert_eq!(float(f64::INFINITY), "null");
        assert_eq!(float(1.5), "1.5");
    }

    #[test]
    fn object_renders_nested() {
        let mut o = JsonObject::new();
        o.str("name", "x").u64("n", 3).bool("ok", true);
        let s = o.render(0);
        assert!(s.contains("\"name\": \"x\""));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"ok\": true"));
    }
}
