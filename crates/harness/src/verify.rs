//! `harness verify` — dynamic cross-validation of the static models.
//!
//! The model checker proves orderings; this module checks that every
//! recorded trace actually respects them. Each run of a sweep is
//! executed (after its pre-flight analysis, whose policy the
//! `ANALYZER_POLICY` environment variable may override) and its merged
//! monitoring trace is validated with the happens-before engine against
//! [`analyzer::proven_orders`] for that run's configuration. A healthy
//! simulator yields zero violations — any `AN-HB-*` error means either
//! the simulator broke a proven protocol ordering or the monitoring
//! pipeline corrupted the trace, both of which must fail CI.
//!
//! A run whose pre-flight analysis *denies* execution (policy `deny`)
//! is recorded and skipped, but verification continues so the final
//! output lists every denial — not just the first.

use analyzer::{policy_from_env, proven_orders, validate_orders, warn_policy, Report};
use raysim::run::{run, try_preflight};

use crate::Sweep;

/// The outcome of verifying one sweep.
#[derive(Debug)]
pub struct VerifyReport {
    /// One happens-before report per executed run, in sweep order.
    pub run_reports: Vec<Report>,
    /// Labels of runs whose pre-flight analysis refused execution.
    pub denied: Vec<String>,
    /// Labels of runs that did not complete (their traces are still
    /// validated — a truncated execution must not break proven orders).
    pub truncated: Vec<String>,
}

impl VerifyReport {
    /// Total happens-before violations across all executed runs.
    pub fn violations(&self) -> usize {
        self.run_reports.iter().map(Report::errors).sum()
    }

    /// Process exit code: `4` when any run was denied by pre-flight
    /// policy, `1` when any proven ordering was violated, `0` otherwise.
    /// Truncation alone does not fail verification — the sweep gate owns
    /// completion; this gate owns ordering.
    pub fn exit_code(&self) -> u8 {
        if !self.denied.is_empty() {
            4
        } else if self.violations() > 0 {
            1
        } else {
            0
        }
    }
}

/// Executes every run of `sweep` (serially — verification sweeps are
/// small) and validates each trace against the orderings proven for its
/// configuration.
pub fn verify_sweep(sweep: &Sweep) -> VerifyReport {
    let mut out = VerifyReport {
        run_reports: Vec::new(),
        denied: Vec::new(),
        truncated: Vec::new(),
    };

    for spec in &sweep.runs {
        let mut cfg = spec.cfg.clone();
        cfg.preflight = policy_from_env(warn_policy());
        if try_preflight(&cfg).is_err() {
            // The summary was already printed by try_preflight; record
            // the denial and keep going so every denial is reported.
            out.denied.push(spec.label.clone());
            continue;
        }
        // The analysis already ran above; don't run it again inside run().
        cfg.preflight = raysim::run::PreflightPolicy::Off;
        let app = cfg.app.clone();
        let result = run(cfg);
        if result.truncated() {
            out.truncated.push(spec.label.clone());
        }
        let mut report = validate_orders(&result.trace, &proven_orders(&app));
        report.subject = format!("{} happens-before", spec.label);
        out.run_reports.push(report);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps;

    #[test]
    fn deny_policy_reports_every_denied_run_and_exits_4() {
        // Two copies of the stock V3 protocol shape (whose window
        // collapse is a static error) plus one healthy V4 run: under
        // `deny`, BOTH V3 runs must be reported — not just the first —
        // and the healthy run still executes and validates.
        use raysim::config::{AppConfig, SceneKind, Version};
        let mut specs = Vec::new();
        for (label, version) in [("bad-a", Version::V3), ("bad-b", Version::V3)] {
            let mut app = AppConfig::version(version);
            app.scene = SceneKind::Quickstart;
            app.width = 8;
            app.height = 8;
            let servants = u32::from(app.servants);
            specs.push(crate::RunSpec {
                label: label.to_owned(),
                cfg: raysim::run::RunConfig::new(app),
                servants,
                version: Some(version),
                paper_percent: None,
            });
        }
        {
            let mut app = AppConfig::version(Version::V4);
            app.servants = 2;
            app.scene = SceneKind::Quickstart;
            app.width = 8;
            app.height = 8;
            let servants = u32::from(app.servants);
            specs.push(crate::RunSpec {
                label: "good".to_owned(),
                cfg: raysim::run::RunConfig::new(app),
                servants,
                version: Some(Version::V4),
                paper_percent: None,
            });
        }
        let sweep = Sweep {
            name: "deny-test".into(),
            runs: specs,
        };
        // Safe against the sibling test: the smoke configs analyze
        // without errors, so a leaked `deny` cannot refuse them.
        std::env::set_var("ANALYZER_POLICY", "deny");
        let report = verify_sweep(&sweep);
        std::env::remove_var("ANALYZER_POLICY");
        assert_eq!(report.denied, vec!["bad-a".to_owned(), "bad-b".to_owned()]);
        assert_eq!(report.run_reports.len(), 1);
        assert_eq!(report.violations(), 0);
        assert_eq!(report.exit_code(), 4);
    }

    #[test]
    fn smoke_sweep_traces_respect_every_proven_order() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        // Every executed run produced a positive edge count (the info
        // line records it).
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }
}
