//! `harness verify` — dynamic cross-validation of the static models.
//!
//! The model checker proves orderings; this module checks that every
//! recorded trace actually respects them. Each job of a sweep is
//! executed (after its configured pre-flight analysis, whose *mode* the
//! `ANALYZER_POLICY` environment variable may override) and its merged
//! monitoring trace is validated with the happens-before engine against
//! the orderings the job's workload declares ([`pipeline::JobRun::orders`]).
//! A healthy simulator yields zero violations — any `AN-HB-*` error
//! means either the simulator broke a proven protocol ordering or the
//! monitoring pipeline corrupted the trace, both of which must fail CI.
//!
//! A run whose pre-flight analysis *denies* execution (policy `deny`)
//! is recorded and skipped, but verification continues so the final
//! output lists every denial — not just the first.
//!
//! With races enabled ([`verify_sweep_with`], `harness verify
//! --races`), each executed run additionally gets a race cross-check:
//! the DPOR explorer runs over the run's communication shape, every
//! `AN-RACE-*` witness interleaving is replayed against the model and
//! confirmed concurrent by the vector-clock engine, and the dynamic
//! trace is reconciled with the static verdict — a recorded
//! `AN-HB-002` race in a shape the round-robin model proves race-free
//! is an inconsistency and fails verification.
//!
//! Every executed ray-tracer run also gets a *structural certificate*
//! cross-check: the P-invariant the structural layer proves over the
//! run's actual protocol net (credit conservation — outstanding jobs
//! never exceed servants × window credits) is re-checked against the
//! recorded trace's send/receive accounting. An algebraic certificate
//! the dynamics contradict would mean the net is mis-modelled, and
//! fails verification.

use analyzer::race::{check_race_model, RaceModel};
use analyzer::{check_races, validate_orders, Diagnostic, ModelBudget, Report};
use pipeline::PolicyMode;
use raysim::config::AppConfig;

use crate::Sweep;

/// The outcome of verifying one sweep.
#[derive(Debug)]
pub struct VerifyReport {
    /// One happens-before report per executed run, in sweep order.
    pub run_reports: Vec<Report>,
    /// One race cross-check report per executed run (empty unless the
    /// sweep was verified with races enabled).
    pub race_reports: Vec<Report>,
    /// One structural-certificate cross-check per executed run that
    /// carries its application shape ([`crate::RunSpec::app`]) — the
    /// recorded trace's credit accounting checked against the
    /// P-invariant bound the structural layer certifies.
    pub structural_reports: Vec<Report>,
    /// Labels of runs whose pre-flight analysis refused execution.
    pub denied: Vec<String>,
    /// Labels of runs that did not complete (their traces are still
    /// validated — a truncated execution must not break proven orders).
    pub truncated: Vec<String>,
}

impl VerifyReport {
    /// Total happens-before violations across all executed runs.
    pub fn violations(&self) -> usize {
        self.run_reports.iter().map(Report::errors).sum()
    }

    /// Race cross-check failures: a witness that does not replay, a
    /// witness the vector-clock engine can order, or a dynamic race in
    /// a statically race-free shape.
    pub fn race_inconsistencies(&self) -> usize {
        self.race_reports.iter().map(Report::errors).sum()
    }

    /// Structural-certificate failures: a recorded trace whose credit
    /// accounting contradicts the P-invariant bound (more jobs
    /// outstanding than window credits exist, or a receipt with
    /// nothing outstanding).
    pub fn certificate_violations(&self) -> usize {
        self.structural_reports.iter().map(Report::errors).sum()
    }

    /// Process exit code: `4` when any run was denied by pre-flight
    /// policy, `1` when any proven ordering was violated, any race
    /// cross-check failed, or any recorded trace contradicted a
    /// structural certificate, `0` otherwise. Truncation alone does
    /// not fail verification — the sweep gate owns completion; this
    /// gate owns ordering.
    pub fn exit_code(&self) -> u8 {
        if !self.denied.is_empty() {
            4
        } else if self.violations() + self.race_inconsistencies() + self.certificate_violations()
            > 0
        {
            1
        } else {
            0
        }
    }
}

/// Executes every job of `sweep` (serially — verification sweeps are
/// small) and validates each trace against the orderings its workload
/// declares. The pre-flight *mode* defaults to warn-but-run so the
/// analysis findings are always printed; `ANALYZER_POLICY` overrides
/// it; the analysis *hook* stays whatever the spec configured.
pub fn verify_sweep(sweep: &Sweep) -> VerifyReport {
    verify_sweep_with(sweep, false)
}

/// [`verify_sweep`] with the race cross-check toggle: when `races` is
/// set, every executed run's communication shape is explored by the
/// DPOR race detector and its witnesses reconciled with the run's
/// recorded trace.
pub fn verify_sweep_with(sweep: &Sweep, races: bool) -> VerifyReport {
    let mut out = VerifyReport {
        run_reports: Vec::new(),
        race_reports: Vec::new(),
        structural_reports: Vec::new(),
        denied: Vec::new(),
        truncated: Vec::new(),
    };

    let mode = PolicyMode::from_env().unwrap_or(PolicyMode::Warn);
    for spec in &sweep.runs {
        let run = match spec.job.run_with_policy(Some(mode)) {
            Ok(run) => run,
            Err(_denied) => {
                // The summary was already printed by the pre-flight;
                // record the denial and keep going so every denial is
                // reported.
                out.denied.push(spec.label.clone());
                continue;
            }
        };
        if run.outcome.truncated() {
            out.truncated.push(spec.label.clone());
        }
        let mut report = validate_orders(&run.trace, &run.orders);
        report.subject = format!("{} happens-before", spec.label);
        if races {
            out.race_reports
                .push(race_crosscheck(spec, &report, &run.orders));
        }
        if let Some(structural) = structural_crosscheck(spec, &run.trace) {
            out.structural_reports.push(structural);
        }
        out.run_reports.push(report);
    }

    out
}

/// The race cross-check for one executed run: explore the run's
/// communication shape, validate every witness (replay + vector-clock
/// concurrency — [`check_race_model`] emits an error for a witness
/// failing either), and reconcile the static verdict with the races
/// the happens-before engine actually observed in the recorded trace.
fn race_crosscheck(
    spec: &crate::RunSpec,
    hb_report: &Report,
    orders: &[analyzer::ProvenOrder],
) -> Report {
    let budget = ModelBudget::full();
    let mut report = match spec.version {
        // The ray tracer's master/servant shape: the preemptive
        // exploration produces the witnesses worth cross-checking (the
        // round-robin shape is proven race-free by the pre-flight).
        Some(version) => {
            let mut r = check_races(&AppConfig::version(version), &budget, true);
            r.subject = format!("{} race cross-check (preemptive shape)", spec.label);
            r
        }
        // SPMD workloads (Jacobi): two workers feeding a collector
        // mailbox under the scope the workload's own orders declare —
        // per-channel orders suppress the benign cross-worker
        // interleaving.
        None => {
            let scope = pipeline::dominant_scope(orders);
            let model = RaceModel::spmd_shape(false, scope);
            let mut r = check_race_model(
                &model,
                budget.race_states,
                &format!("{} race cross-check (SPMD shape)", spec.label),
            );
            r.subject = format!("{} race cross-check (SPMD shape)", spec.label);
            r
        }
    };

    // Reconcile static and dynamic: the machine's scheduler is the
    // non-preemptive round-robin the models prove race-free for every
    // stock shape — so a concurrent duplicate in the *recorded* trace
    // contradicts the model and must fail verification.
    let dynamic_races = hb_report.with_code("AN-HB-002").count();
    if dynamic_races > 0 {
        report.push(
            Diagnostic::error(
                "AN-RACE-001",
                format!(
                    "recorded trace contradicts the race model: {dynamic_races} concurrent \
                     duplicate(s) (AN-HB-002) observed dynamically in a shape the \
                     round-robin explorer proves race-free"
                ),
            )
            .help("either the scheduler is not round-robin or the trace is corrupt"),
        );
    } else {
        report.push(Diagnostic::info(
            "AN-RACE-001",
            "recorded trace agrees with the race model: no concurrent duplicates observed \
             dynamically",
        ));
    }
    report
}

/// The structural-certificate cross-check for one executed run: the
/// P-invariant the structural layer certifies for the run's *actual*
/// application shape (not the stock version — a scaling rung runs 63
/// servants) bounds outstanding jobs at servants × window credits in
/// every reachable state. The recorded trace must agree: replaying its
/// send/receive accounting, the peak number of outstanding job sends
/// can never exceed the certified bound, and no receipt can arrive
/// with nothing outstanding.
///
/// Receipts are counted at `RECEIVE_RESULTS_BEGIN`, which *under*-
/// counts outstanding work (the credit is only returned once the
/// result is consumed) — so the check is conservative: it can miss a
/// marginal violation but never fabricate one.
///
/// `None` for runs without an application shape (Jacobi — its
/// protocol has no credit window to certify).
fn structural_crosscheck(spec: &crate::RunSpec, trace: &simple::Trace) -> Option<Report> {
    use raysim::tokens::{RECEIVE_RESULTS_BEGIN, SEND_JOBS_BEGIN};

    let app = spec.app.as_ref()?;
    let verdict = analyzer::analyze_structural(app);
    let credits = verdict.intended_concurrency;
    let mut report = Report::new(format!("{} structural certificate", spec.label));

    let (mut outstanding, mut peak) = (0u64, 0u64);
    let (mut sends, mut receives) = (0u64, 0u64);
    let mut underflow = false;
    for e in trace.events() {
        match e.token.value() {
            SEND_JOBS_BEGIN => {
                sends += 1;
                outstanding += 1;
                peak = peak.max(outstanding);
            }
            RECEIVE_RESULTS_BEGIN => {
                receives += 1;
                match outstanding.checked_sub(1) {
                    Some(rest) => outstanding = rest,
                    None => underflow = true,
                }
            }
            _ => {}
        }
    }

    let certificate = verdict
        .conservation
        .as_ref()
        .map(|inv| inv.render(&verdict.net.net));
    if underflow {
        report.push(
            Diagnostic::error(
                "AN-STRUCT-001",
                format!(
                    "recorded trace contradicts the credit-conservation certificate: a result \
                     receipt arrived with no job outstanding ({sends} sends, {receives} receipts)"
                ),
            )
            .help("either the trace is corrupt or the protocol net mis-models the run"),
        );
    } else if peak > credits {
        report.push(
            Diagnostic::error(
                "AN-STRUCT-001",
                format!(
                    "recorded trace contradicts the credit-conservation certificate: {peak} \
                     jobs outstanding at the dynamic peak, but the P-invariant caps the window \
                     at {credits} credits"
                ),
            )
            .help("either the trace is corrupt or the protocol net mis-models the run"),
        );
    } else {
        let mut d = Diagnostic::info(
            "AN-STRUCT-001",
            format!(
                "invariant certificate holds on the recorded trace: peak {peak} of {credits} \
                 window credits outstanding ({sends} sends, {receives} receipts)"
            ),
        );
        if let Some(certificate) = certificate {
            d = d.note(format!("certified bound: {certificate}"));
        }
        report.push(d);
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps;
    use pipeline::{Job, PipelineConfig};
    use raysim::config::{AppConfig, SceneKind, Version};

    fn ray_spec(label: &str, version: Version, servants: u16) -> crate::RunSpec {
        let mut app = AppConfig::version(version);
        app.servants = servants;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        let mut cfg = PipelineConfig::new(app.clone());
        cfg.preflight = analyzer::pipeline_warn();
        crate::RunSpec {
            label: label.to_owned(),
            job: Job::new(cfg),
            version: Some(version),
            app: Some(app),
            paper_percent: None,
        }
    }

    #[test]
    fn deny_policy_reports_every_denied_run_and_exits_4() {
        // Two copies of the stock V3 protocol shape (whose window
        // collapse is a static error) plus one healthy V4 run: under
        // `deny`, BOTH V3 runs must be reported — not just the first —
        // and the healthy run still executes and validates.
        let sweep = Sweep {
            name: "deny-test".into(),
            runs: vec![
                ray_spec("bad-a", Version::V3, 15),
                ray_spec("bad-b", Version::V3, 15),
                ray_spec("good", Version::V4, 2),
            ],
        };
        // Safe against the sibling tests: the smoke and jacobi configs
        // analyze without errors, so a leaked `deny` cannot refuse them.
        std::env::set_var("ANALYZER_POLICY", "deny");
        let report = verify_sweep(&sweep);
        std::env::remove_var("ANALYZER_POLICY");
        assert_eq!(report.denied, vec!["bad-a".to_owned(), "bad-b".to_owned()]);
        assert_eq!(report.run_reports.len(), 1);
        assert_eq!(report.violations(), 0);
        assert_eq!(report.exit_code(), 4);
    }

    #[test]
    fn smoke_sweep_traces_respect_every_proven_order() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        // Every executed run produced a positive edge count (the info
        // line records it).
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn structural_certificates_hold_on_every_smoke_trace() {
        // Every ray run of the smoke sweep carries its application
        // shape, so each gets a certificate cross-check — and a healthy
        // simulator can never have more jobs outstanding than the
        // P-invariant's credit bound.
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let ray_runs = sweep.runs.iter().filter(|s| s.app.is_some()).count();
        assert!(ray_runs > 0, "smoke sweep lost its ray runs");
        let report = verify_sweep(&sweep);
        assert_eq!(report.structural_reports.len(), ray_runs);
        assert_eq!(
            report.certificate_violations(),
            0,
            "{:#?}",
            report.structural_reports
        );
        assert_eq!(report.exit_code(), 0);
        for r in &report.structural_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("invariant certificate holds")
                        && f.notes.iter().any(|n| n.contains("certified bound"))),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn certificate_crosscheck_uses_the_actual_shape_not_the_stock_version() {
        // A 5-servant V4 run (stock V4 has 15 servants): the bound must
        // come from the spec's recorded app — 5 × window credits — and
        // still hold on the trace.
        let spec = ray_spec("scaled", Version::V4, 5);
        let app = spec.app.clone().unwrap();
        let expected = analyzer::analyze_structural(&app).intended_concurrency;
        let sweep = Sweep {
            name: "scaled".into(),
            runs: vec![spec],
        };
        let report = verify_sweep(&sweep);
        assert_eq!(report.certificate_violations(), 0);
        let r = &report.structural_reports[0];
        assert!(
            r.findings
                .iter()
                .any(|f| f.message.contains(&format!("of {expected} window credits"))),
            "expected the {expected}-credit bound in: {}",
            r.render()
        );
    }

    #[test]
    fn race_crosscheck_confirms_every_witness_on_the_smoke_sweep() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep_with(&sweep, true);
        assert_eq!(report.race_reports.len(), report.run_reports.len());
        assert_eq!(
            report.race_inconsistencies(),
            0,
            "{:#?}",
            report.race_reports
        );
        assert_eq!(report.exit_code(), 0);
        for r in &report.race_reports {
            // The preemptive shape always yields at least one witness,
            // and every witness carries its consistency note.
            assert!(r.warnings() >= 1, "{}", r.render());
            assert!(
                r.findings.iter().any(|f| f
                    .notes
                    .iter()
                    .any(|n| n.contains("confirmed concurrent by the vector-clock"))),
                "{}",
                r.render()
            );
            // And the recorded trace agreed with the static verdict.
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("recorded trace agrees")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn race_crosscheck_suppresses_the_benign_spmd_interleaving() {
        let sweep = sweeps::by_name("jacobi", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep_with(&sweep, true);
        assert_eq!(report.race_reports.len(), report.run_reports.len());
        assert_eq!(
            report.race_inconsistencies(),
            0,
            "{:#?}",
            report.race_reports
        );
        for r in &report.race_reports {
            // Jacobi declares per-channel orders: the cross-worker
            // receive-race at the collector mailbox is observed but
            // suppressed, so no warning survives.
            assert_eq!(r.warnings(), 0, "{}", r.render());
            assert!(
                r.findings.iter().any(|f| f.message.contains("suppressed")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn jacobi_sweep_traces_respect_the_spmd_orders() {
        // The second workload through the same verification gate: every
        // worker's exchange-before-compute ordering must hold in every
        // recorded trace, channel by channel.
        let sweep = sweeps::by_name("jacobi", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }
}
