//! `harness verify` — dynamic cross-validation of the static models.
//!
//! The model checker proves orderings; this module checks that every
//! recorded trace actually respects them. Each job of a sweep is
//! executed (after its configured pre-flight analysis, whose *mode* the
//! `ANALYZER_POLICY` environment variable may override) and its merged
//! monitoring trace is validated with the happens-before engine against
//! the orderings the job's workload declares ([`pipeline::JobRun::orders`]).
//! A healthy simulator yields zero violations — any `AN-HB-*` error
//! means either the simulator broke a proven protocol ordering or the
//! monitoring pipeline corrupted the trace, both of which must fail CI.
//!
//! A run whose pre-flight analysis *denies* execution (policy `deny`)
//! is recorded and skipped, but verification continues so the final
//! output lists every denial — not just the first.

use analyzer::{validate_orders, Report};
use pipeline::PolicyMode;

use crate::Sweep;

/// The outcome of verifying one sweep.
#[derive(Debug)]
pub struct VerifyReport {
    /// One happens-before report per executed run, in sweep order.
    pub run_reports: Vec<Report>,
    /// Labels of runs whose pre-flight analysis refused execution.
    pub denied: Vec<String>,
    /// Labels of runs that did not complete (their traces are still
    /// validated — a truncated execution must not break proven orders).
    pub truncated: Vec<String>,
}

impl VerifyReport {
    /// Total happens-before violations across all executed runs.
    pub fn violations(&self) -> usize {
        self.run_reports.iter().map(Report::errors).sum()
    }

    /// Process exit code: `4` when any run was denied by pre-flight
    /// policy, `1` when any proven ordering was violated, `0` otherwise.
    /// Truncation alone does not fail verification — the sweep gate owns
    /// completion; this gate owns ordering.
    pub fn exit_code(&self) -> u8 {
        if !self.denied.is_empty() {
            4
        } else if self.violations() > 0 {
            1
        } else {
            0
        }
    }
}

/// Executes every job of `sweep` (serially — verification sweeps are
/// small) and validates each trace against the orderings its workload
/// declares. The pre-flight *mode* defaults to warn-but-run so the
/// analysis findings are always printed; `ANALYZER_POLICY` overrides
/// it; the analysis *hook* stays whatever the spec configured.
pub fn verify_sweep(sweep: &Sweep) -> VerifyReport {
    let mut out = VerifyReport {
        run_reports: Vec::new(),
        denied: Vec::new(),
        truncated: Vec::new(),
    };

    let mode = PolicyMode::from_env().unwrap_or(PolicyMode::Warn);
    for spec in &sweep.runs {
        let run = match spec.job.run_with_policy(Some(mode)) {
            Ok(run) => run,
            Err(_denied) => {
                // The summary was already printed by the pre-flight;
                // record the denial and keep going so every denial is
                // reported.
                out.denied.push(spec.label.clone());
                continue;
            }
        };
        if run.outcome.truncated() {
            out.truncated.push(spec.label.clone());
        }
        let mut report = validate_orders(&run.trace, &run.orders);
        report.subject = format!("{} happens-before", spec.label);
        out.run_reports.push(report);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps;
    use pipeline::{Job, PipelineConfig};
    use raysim::config::{AppConfig, SceneKind, Version};

    fn ray_spec(label: &str, version: Version, servants: u16) -> crate::RunSpec {
        let mut app = AppConfig::version(version);
        app.servants = servants;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        let mut cfg = PipelineConfig::new(app);
        cfg.preflight = analyzer::pipeline_warn();
        crate::RunSpec {
            label: label.to_owned(),
            job: Job::new(cfg),
            version: Some(version),
            paper_percent: None,
        }
    }

    #[test]
    fn deny_policy_reports_every_denied_run_and_exits_4() {
        // Two copies of the stock V3 protocol shape (whose window
        // collapse is a static error) plus one healthy V4 run: under
        // `deny`, BOTH V3 runs must be reported — not just the first —
        // and the healthy run still executes and validates.
        let sweep = Sweep {
            name: "deny-test".into(),
            runs: vec![
                ray_spec("bad-a", Version::V3, 15),
                ray_spec("bad-b", Version::V3, 15),
                ray_spec("good", Version::V4, 2),
            ],
        };
        // Safe against the sibling tests: the smoke and jacobi configs
        // analyze without errors, so a leaked `deny` cannot refuse them.
        std::env::set_var("ANALYZER_POLICY", "deny");
        let report = verify_sweep(&sweep);
        std::env::remove_var("ANALYZER_POLICY");
        assert_eq!(report.denied, vec!["bad-a".to_owned(), "bad-b".to_owned()]);
        assert_eq!(report.run_reports.len(), 1);
        assert_eq!(report.violations(), 0);
        assert_eq!(report.exit_code(), 4);
    }

    #[test]
    fn smoke_sweep_traces_respect_every_proven_order() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        // Every executed run produced a positive edge count (the info
        // line records it).
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn jacobi_sweep_traces_respect_the_spmd_orders() {
        // The second workload through the same verification gate: every
        // worker's exchange-before-compute ordering must hold in every
        // recorded trace, channel by channel.
        let sweep = sweeps::by_name("jacobi", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }
}
