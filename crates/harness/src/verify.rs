//! `harness verify` — dynamic cross-validation of the static models.
//!
//! The model checker proves orderings; this module checks that every
//! recorded trace actually respects them. Each job of a sweep is
//! executed (after its configured pre-flight analysis, whose *mode* the
//! `ANALYZER_POLICY` environment variable may override) and its merged
//! monitoring trace is validated with the happens-before engine against
//! the orderings the job's workload declares ([`pipeline::JobRun::orders`]).
//! A healthy simulator yields zero violations — any `AN-HB-*` error
//! means either the simulator broke a proven protocol ordering or the
//! monitoring pipeline corrupted the trace, both of which must fail CI.
//!
//! A run whose pre-flight analysis *denies* execution (policy `deny`)
//! is recorded and skipped, but verification continues so the final
//! output lists every denial — not just the first.
//!
//! With races enabled ([`verify_sweep_with`], `harness verify
//! --races`), each executed run additionally gets a race cross-check:
//! the DPOR explorer runs over the run's communication shape, every
//! `AN-RACE-*` witness interleaving is replayed against the model and
//! confirmed concurrent by the vector-clock engine, and the dynamic
//! trace is reconciled with the static verdict — a recorded
//! `AN-HB-002` race in a shape the round-robin model proves race-free
//! is an inconsistency and fails verification.
//!
//! Every executed ray-tracer run also gets a *structural certificate*
//! cross-check: the P-invariant the structural layer proves over the
//! run's actual protocol net (credit conservation — outstanding jobs
//! never exceed servants × window credits) is re-checked against the
//! recorded trace's send/receive accounting. An algebraic certificate
//! the dynamics contradict would mean the net is mis-modelled, and
//! fails verification.

use analyzer::race::{check_race_model, RaceModel};
use analyzer::{check_races, validate_orders, Diagnostic, ModelBudget, Report};
use pipeline::PolicyMode;
use raysim::config::AppConfig;
use suprenum::SchedulerKind;

use crate::Sweep;

/// Knobs for a verification pass.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Run the DPOR race cross-check on every executed run.
    pub races: bool,
    /// Re-run every job under this scheduling policy instead of the one
    /// its sweep baked in (the CLI's `verify --scheduler`). The
    /// scheduler cross-check always reads the policy each run *actually*
    /// executed under, so the verdict gates stay correct either way.
    pub scheduler: Option<SchedulerKind>,
}

/// The outcome of verifying one sweep.
#[derive(Debug)]
pub struct VerifyReport {
    /// One happens-before report per executed run, in sweep order.
    pub run_reports: Vec<Report>,
    /// One race cross-check report per executed run (empty unless the
    /// sweep was verified with races enabled).
    pub race_reports: Vec<Report>,
    /// One structural-certificate cross-check per executed run that
    /// carries its application shape ([`crate::RunSpec::app`]) — the
    /// recorded trace's credit accounting checked against the
    /// P-invariant bound the structural layer certifies.
    pub structural_reports: Vec<Report>,
    /// One scheduler cross-check per executed run: the policy the run
    /// executed under, reconciled against the preemption tokens its
    /// recorded trace contains. Round-robin must show none; a
    /// deterministic preemptive policy with kernel instrumentation must
    /// show at least one — the dynamically observed counterpart of the
    /// analyzer's static preemptive-divergence verdict.
    pub sched_reports: Vec<Report>,
    /// Labels of runs whose pre-flight analysis refused execution.
    pub denied: Vec<String>,
    /// Labels of runs that did not complete (their traces are still
    /// validated — a truncated execution must not break proven orders).
    pub truncated: Vec<String>,
}

impl VerifyReport {
    /// Total happens-before violations across all executed runs.
    pub fn violations(&self) -> usize {
        self.run_reports.iter().map(Report::errors).sum()
    }

    /// Race cross-check failures: a witness that does not replay, a
    /// witness the vector-clock engine can order, or a dynamic race in
    /// a statically race-free shape.
    pub fn race_inconsistencies(&self) -> usize {
        self.race_reports.iter().map(Report::errors).sum()
    }

    /// Structural-certificate failures: a recorded trace whose credit
    /// accounting contradicts the P-invariant bound (more jobs
    /// outstanding than window credits exist, or a receipt with
    /// nothing outstanding).
    pub fn certificate_violations(&self) -> usize {
        self.structural_reports.iter().map(Report::errors).sum()
    }

    /// Scheduler cross-check failures: preemption tokens recorded under
    /// round-robin, or a deterministic preemptive policy whose
    /// kernel-instrumented trace shows no preemption at all.
    pub fn sched_inconsistencies(&self) -> usize {
        self.sched_reports.iter().map(Report::errors).sum()
    }

    /// Process exit code: `4` when any run was denied by pre-flight
    /// policy, `1` when any proven ordering was violated, any race or
    /// scheduler cross-check failed, or any recorded trace contradicted
    /// a structural certificate, `0` otherwise. Truncation alone does
    /// not fail verification — the sweep gate owns completion; this
    /// gate owns ordering.
    pub fn exit_code(&self) -> u8 {
        if !self.denied.is_empty() {
            4
        } else if self.violations()
            + self.race_inconsistencies()
            + self.certificate_violations()
            + self.sched_inconsistencies()
            > 0
        {
            1
        } else {
            0
        }
    }
}

/// Executes every job of `sweep` (serially — verification sweeps are
/// small) and validates each trace against the orderings its workload
/// declares. The pre-flight *mode* defaults to warn-but-run so the
/// analysis findings are always printed; `ANALYZER_POLICY` overrides
/// it; the analysis *hook* stays whatever the spec configured.
pub fn verify_sweep(sweep: &Sweep) -> VerifyReport {
    verify_sweep_with(sweep, false)
}

/// [`verify_sweep`] with the race cross-check toggle: when `races` is
/// set, every executed run's communication shape is explored by the
/// DPOR race detector and its witnesses reconciled with the run's
/// recorded trace.
pub fn verify_sweep_with(sweep: &Sweep, races: bool) -> VerifyReport {
    verify_sweep_opts(
        sweep,
        &VerifyOptions {
            races,
            scheduler: None,
        },
    )
}

/// [`verify_sweep`] with the full option set — race cross-checks and a
/// scheduling-policy override (see [`VerifyOptions`]).
pub fn verify_sweep_opts(sweep: &Sweep, opts: &VerifyOptions) -> VerifyReport {
    let mut out = VerifyReport {
        run_reports: Vec::new(),
        race_reports: Vec::new(),
        structural_reports: Vec::new(),
        sched_reports: Vec::new(),
        denied: Vec::new(),
        truncated: Vec::new(),
    };

    let mode = PolicyMode::from_env().unwrap_or(PolicyMode::Warn);
    for spec in &sweep.runs {
        let mut job = spec.job.clone();
        if let Some(kind) = &opts.scheduler {
            job.override_scheduler(kind.clone());
        }
        let run = match job.run_with_policy(Some(mode)) {
            Ok(run) => run,
            Err(_denied) => {
                // The summary was already printed by the pre-flight;
                // record the denial and keep going so every denial is
                // reported.
                out.denied.push(spec.label.clone());
                continue;
            }
        };
        if run.outcome.truncated() {
            out.truncated.push(spec.label.clone());
        }
        if spec.faults.is_some() {
            // A fault-study row: the probe plane was deliberately
            // perturbed, so ordering anomalies in the recorded trace
            // are the measurement itself — report, don't gate.
            let mut report = Report::new(format!("{} happens-before", spec.label));
            report.push(Diagnostic::info(
                "AN-HB-000",
                "fault injection active on this row — measurement-plane cross-checks \
                 (happens-before, race, structural certificate) are informational only \
                 and skipped; injected drops, corruptions, and clock drift are the \
                 subject of the measurement",
            ));
            out.run_reports.push(report);
            continue;
        }
        let mut report = validate_orders(&run.trace, &run.orders);
        report.subject = format!("{} happens-before", spec.label);
        if opts.races {
            out.race_reports.push(race_crosscheck(
                spec,
                &report,
                &run.orders,
                run.scheduler.is_preemptive(),
            ));
        }
        if let Some(structural) = structural_crosscheck(spec, &run.trace) {
            out.structural_reports.push(structural);
        }
        out.sched_reports
            .push(sched_crosscheck(&spec.label, &run.scheduler, &run.trace));
        out.run_reports.push(report);
    }

    out
}

/// The scheduler cross-check for one executed run: reconcile the policy
/// the run executed under with the preemption evidence in its recorded
/// trace. This is the dynamic counterpart of the analyzer's static
/// preemptive-divergence verdict:
///
/// * round-robin is non-preemptive by construction — a
///   [`suprenum::os_tokens::KERNEL_PREEMPT`] token in its trace means
///   the scheduler abstraction leaked (`AN-RACE-004` error);
/// * a deterministic preemptive policy (fixed-priority, CFS) whose
///   kernel-instrumented trace shows *no* preemption never exercised
///   the predicted race class — the study measured nothing
///   (`AN-RACE-004` error);
/// * the fuzz wrapper perturbs probabilistically per seed, so its
///   counts are reported without gating;
/// * without kernel instrumentation the trace cannot witness either
///   way, and the static verdict stands unreconciled (info).
fn sched_crosscheck(label: &str, scheduler: &SchedulerKind, trace: &simple::Trace) -> Report {
    use suprenum::os_tokens::{self, KERNEL_PREEMPT, KERNEL_TOKEN_BASE};

    let mut report = Report::new(format!("{label} scheduler cross-check ({scheduler})"));
    let kernel_tokens = trace
        .events()
        .iter()
        .filter(|e| e.token.value() >= KERNEL_TOKEN_BASE)
        .count();
    let preempts: Vec<u8> = trace
        .events()
        .iter()
        .filter(|e| e.token.value() == KERNEL_PREEMPT)
        .map(|e| os_tokens::split_param(e.param.value()).1)
        .collect();
    // Code 1 is a mailbox LWP seizing the CPU from user computation —
    // the paper's mailbox-synchrony scheduling decision made visible.
    let mailbox_seizes = preempts.iter().filter(|&&c| c == 1).count();

    if kernel_tokens == 0 {
        report.push(Diagnostic::info(
            "AN-RACE-004",
            format!(
                "no kernel instrumentation recorded under '{scheduler}' — the static \
                 scheduling verdict stands unreconciled (enable kernel events to observe \
                 preemption dynamically)"
            ),
        ));
        return report;
    }

    match scheduler {
        SchedulerKind::RoundRobin => {
            if preempts.is_empty() {
                report.push(Diagnostic::info(
                    "AN-RACE-004",
                    format!(
                        "dynamically confirmed: {kernel_tokens} kernel event(s) recorded and \
                         no preemption under round-robin — the non-preemptive model the race \
                         explorer proves race-free matches the machine"
                    ),
                ));
            } else {
                report.push(
                    Diagnostic::error(
                        "AN-RACE-004",
                        format!(
                            "{} preemption token(s) recorded under round-robin — a \
                             non-preemptive policy must never preempt",
                            preempts.len()
                        ),
                    )
                    .help("the scheduler abstraction leaked or the trace is corrupt"),
                );
            }
        }
        SchedulerKind::Preemptive { .. } | SchedulerKind::Cfs { .. } => {
            if preempts.is_empty() {
                report.push(
                    Diagnostic::error(
                        "AN-RACE-004",
                        format!(
                            "predicted preemptive race class not observed: '{scheduler}' \
                             recorded {kernel_tokens} kernel event(s) but zero preemptions"
                        ),
                    )
                    .help(
                        "shrink the quantum or grow the workload until the policy actually \
                         preempts — an unexercised policy verifies nothing",
                    ),
                );
            } else {
                report.push(Diagnostic::info(
                    "AN-RACE-004",
                    format!(
                        "dynamically confirmed: {} preemption(s) under '{scheduler}', {} by \
                         mailbox seizure — the preemptive divergence the analyzer predicts \
                         statically is observed in the recorded trace",
                        preempts.len(),
                        mailbox_seizes
                    ),
                ));
            }
        }
        SchedulerKind::Fuzz { .. } => {
            report.push(Diagnostic::info(
                "AN-RACE-004",
                format!(
                    "fuzz policy '{scheduler}': {} preemption(s) recorded ({} mailbox) — \
                     seeded perturbation reported without gating",
                    preempts.len(),
                    mailbox_seizes
                ),
            ));
        }
    }
    report
}

/// The race cross-check for one executed run: explore the run's
/// communication shape, validate every witness (replay + vector-clock
/// concurrency — [`check_race_model`] emits an error for a witness
/// failing either), and reconcile the static verdict with the races
/// the happens-before engine actually observed in the recorded trace.
fn race_crosscheck(
    spec: &crate::RunSpec,
    hb_report: &Report,
    orders: &[analyzer::ProvenOrder],
    preemptive: bool,
) -> Report {
    let budget = ModelBudget::full();
    let mut report = match spec.version {
        // The ray tracer's master/servant shape: the preemptive
        // exploration produces the witnesses worth cross-checking (the
        // round-robin shape is proven race-free by the pre-flight).
        Some(version) => {
            let mut r = check_races(&AppConfig::version(version), &budget, true);
            r.subject = format!("{} race cross-check (preemptive shape)", spec.label);
            r
        }
        // SPMD workloads (Jacobi): two workers feeding a collector
        // mailbox under the scope the workload's own orders declare —
        // per-channel orders suppress the benign cross-worker
        // interleaving.
        None => {
            let scope = pipeline::dominant_scope(orders);
            let model = RaceModel::spmd_shape(false, scope);
            let mut r = check_race_model(
                &model,
                budget.race_states,
                &format!("{} race cross-check (SPMD shape)", spec.label),
            );
            r.subject = format!("{} race cross-check (SPMD shape)", spec.label);
            r
        }
    };

    // Reconcile static and dynamic. Under the non-preemptive
    // round-robin policy the models prove every stock shape race-free —
    // so a concurrent duplicate in the *recorded* trace contradicts the
    // model and must fail verification. Under a preemptive policy the
    // static explorer *predicts* such interleavings: observing one is
    // agreement, not contradiction.
    let dynamic_races = hb_report.with_code("AN-HB-002").count();
    match (dynamic_races > 0, preemptive) {
        (true, false) => report.push(
            Diagnostic::error(
                "AN-RACE-001",
                format!(
                    "recorded trace contradicts the race model: {dynamic_races} concurrent \
                     duplicate(s) (AN-HB-002) observed dynamically in a shape the \
                     round-robin explorer proves race-free"
                ),
            )
            .help("either the scheduler is not round-robin or the trace is corrupt"),
        ),
        (true, true) => report.push(Diagnostic::info(
            "AN-RACE-001",
            format!(
                "recorded trace agrees with the preemptive exploration: {dynamic_races} \
                 concurrent duplicate(s) (AN-HB-002) observed dynamically, as the witness \
                 interleavings predict"
            ),
        )),
        (false, _) => report.push(Diagnostic::info(
            "AN-RACE-001",
            "recorded trace agrees with the race model: no concurrent duplicates observed \
             dynamically",
        )),
    }
    report
}

/// The structural-certificate cross-check for one executed run: the
/// P-invariant the structural layer certifies for the run's *actual*
/// application shape (not the stock version — a scaling rung runs 63
/// servants) bounds outstanding jobs at servants × window credits in
/// every reachable state. The recorded trace must agree: replaying its
/// send/receive accounting, the peak number of outstanding job sends
/// can never exceed the certified bound, and no receipt can arrive
/// with nothing outstanding.
///
/// Receipts are counted at `RECEIVE_RESULTS_BEGIN`, which *under*-
/// counts outstanding work (the credit is only returned once the
/// result is consumed) — so the check is conservative: it can miss a
/// marginal violation but never fabricate one.
///
/// `None` for runs without an application shape (Jacobi — its
/// protocol has no credit window to certify).
fn structural_crosscheck(spec: &crate::RunSpec, trace: &simple::Trace) -> Option<Report> {
    use raysim::tokens::{RECEIVE_RESULTS_BEGIN, SEND_JOBS_BEGIN};

    let app = spec.app.as_ref()?;
    let verdict = analyzer::analyze_structural(app);
    let credits = verdict.intended_concurrency;
    let mut report = Report::new(format!("{} structural certificate", spec.label));

    let (mut outstanding, mut peak) = (0u64, 0u64);
    let (mut sends, mut receives) = (0u64, 0u64);
    let mut underflow = false;
    for e in trace.events() {
        match e.token.value() {
            SEND_JOBS_BEGIN => {
                sends += 1;
                outstanding += 1;
                peak = peak.max(outstanding);
            }
            RECEIVE_RESULTS_BEGIN => {
                receives += 1;
                match outstanding.checked_sub(1) {
                    Some(rest) => outstanding = rest,
                    None => underflow = true,
                }
            }
            _ => {}
        }
    }

    let certificate = verdict
        .conservation
        .as_ref()
        .map(|inv| inv.render(&verdict.net.net));
    if underflow {
        report.push(
            Diagnostic::error(
                "AN-STRUCT-001",
                format!(
                    "recorded trace contradicts the credit-conservation certificate: a result \
                     receipt arrived with no job outstanding ({sends} sends, {receives} receipts)"
                ),
            )
            .help("either the trace is corrupt or the protocol net mis-models the run"),
        );
    } else if peak > credits {
        report.push(
            Diagnostic::error(
                "AN-STRUCT-001",
                format!(
                    "recorded trace contradicts the credit-conservation certificate: {peak} \
                     jobs outstanding at the dynamic peak, but the P-invariant caps the window \
                     at {credits} credits"
                ),
            )
            .help("either the trace is corrupt or the protocol net mis-models the run"),
        );
    } else {
        let mut d = Diagnostic::info(
            "AN-STRUCT-001",
            format!(
                "invariant certificate holds on the recorded trace: peak {peak} of {credits} \
                 window credits outstanding ({sends} sends, {receives} receipts)"
            ),
        );
        if let Some(certificate) = certificate {
            d = d.note(format!("certified bound: {certificate}"));
        }
        report.push(d);
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps;
    use pipeline::{Job, PipelineConfig};
    use raysim::config::{AppConfig, SceneKind, Version};

    fn ray_spec(label: &str, version: Version, servants: u16) -> crate::RunSpec {
        let mut app = AppConfig::version(version);
        app.servants = servants;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        let mut cfg = PipelineConfig::new(app.clone());
        cfg.preflight = analyzer::pipeline_warn();
        crate::RunSpec {
            label: label.to_owned(),
            job: Job::new(cfg),
            version: Some(version),
            app: Some(app),
            paper_percent: None,
            faults: None,
        }
    }

    #[test]
    fn deny_policy_reports_every_denied_run_and_exits_4() {
        // Two copies of the stock V3 protocol shape (whose window
        // collapse is a static error) plus one healthy V4 run: under
        // `deny`, BOTH V3 runs must be reported — not just the first —
        // and the healthy run still executes and validates.
        let sweep = Sweep {
            name: "deny-test".into(),
            runs: vec![
                ray_spec("bad-a", Version::V3, 15),
                ray_spec("bad-b", Version::V3, 15),
                ray_spec("good", Version::V4, 2),
            ],
        };
        // Safe against the sibling tests: the smoke and jacobi configs
        // analyze without errors, so a leaked `deny` cannot refuse them.
        std::env::set_var("ANALYZER_POLICY", "deny");
        let report = verify_sweep(&sweep);
        std::env::remove_var("ANALYZER_POLICY");
        assert_eq!(report.denied, vec!["bad-a".to_owned(), "bad-b".to_owned()]);
        assert_eq!(report.run_reports.len(), 1);
        assert_eq!(report.violations(), 0);
        assert_eq!(report.exit_code(), 4);
    }

    #[test]
    fn smoke_sweep_traces_respect_every_proven_order() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        // Every executed run produced a positive edge count (the info
        // line records it).
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn structural_certificates_hold_on_every_smoke_trace() {
        // Every ray run of the smoke sweep carries its application
        // shape, so each gets a certificate cross-check — and a healthy
        // simulator can never have more jobs outstanding than the
        // P-invariant's credit bound.
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let ray_runs = sweep.runs.iter().filter(|s| s.app.is_some()).count();
        assert!(ray_runs > 0, "smoke sweep lost its ray runs");
        let report = verify_sweep(&sweep);
        assert_eq!(report.structural_reports.len(), ray_runs);
        assert_eq!(
            report.certificate_violations(),
            0,
            "{:#?}",
            report.structural_reports
        );
        assert_eq!(report.exit_code(), 0);
        for r in &report.structural_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("invariant certificate holds")
                        && f.notes.iter().any(|n| n.contains("certified bound"))),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn certificate_crosscheck_uses_the_actual_shape_not_the_stock_version() {
        // A 5-servant V4 run (stock V4 has 15 servants): the bound must
        // come from the spec's recorded app — 5 × window credits — and
        // still hold on the trace.
        let spec = ray_spec("scaled", Version::V4, 5);
        let app = spec.app.clone().unwrap();
        let expected = analyzer::analyze_structural(&app).intended_concurrency;
        let sweep = Sweep {
            name: "scaled".into(),
            runs: vec![spec],
        };
        let report = verify_sweep(&sweep);
        assert_eq!(report.certificate_violations(), 0);
        let r = &report.structural_reports[0];
        assert!(
            r.findings
                .iter()
                .any(|f| f.message.contains(&format!("of {expected} window credits"))),
            "expected the {expected}-credit bound in: {}",
            r.render()
        );
    }

    #[test]
    fn race_crosscheck_confirms_every_witness_on_the_smoke_sweep() {
        let sweep = sweeps::by_name("smoke", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep_with(&sweep, true);
        assert_eq!(report.race_reports.len(), report.run_reports.len());
        assert_eq!(
            report.race_inconsistencies(),
            0,
            "{:#?}",
            report.race_reports
        );
        assert_eq!(report.exit_code(), 0);
        for r in &report.race_reports {
            // The preemptive shape always yields at least one witness,
            // and every witness carries its consistency note.
            assert!(r.warnings() >= 1, "{}", r.render());
            assert!(
                r.findings.iter().any(|f| f
                    .notes
                    .iter()
                    .any(|n| n.contains("confirmed concurrent by the vector-clock"))),
                "{}",
                r.render()
            );
            // And the recorded trace agreed with the static verdict.
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("recorded trace agrees")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn race_crosscheck_suppresses_the_benign_spmd_interleaving() {
        let sweep = sweeps::by_name("jacobi", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep_with(&sweep, true);
        assert_eq!(report.race_reports.len(), report.run_reports.len());
        assert_eq!(
            report.race_inconsistencies(),
            0,
            "{:#?}",
            report.race_reports
        );
        for r in &report.race_reports {
            // Jacobi declares per-channel orders: the cross-worker
            // receive-race at the collector mailbox is observed but
            // suppressed, so no warning survives.
            assert_eq!(r.warnings(), 0, "{}", r.render());
            assert!(
                r.findings.iter().any(|f| f.message.contains("suppressed")),
                "{}",
                r.render()
            );
        }
    }

    #[test]
    fn sched_sweep_reconciles_static_and_dynamic_scheduling_verdicts() {
        // The inverted gate of the scheduling study: round-robin rows
        // must record kernel events and zero preemptions; the
        // deterministic preemptive policies must record at least one —
        // both directions verified on the same sweep, exit code 0.
        let sweep = sweeps::by_name("sched", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(
            report.sched_inconsistencies(),
            0,
            "{:#?}",
            report.sched_reports
        );
        assert_eq!(report.exit_code(), 0);
        // Fault rows skip the measurement-plane gates entirely.
        let fault_rows = sweep.runs.iter().filter(|s| s.faults.is_some()).count();
        assert_eq!(report.sched_reports.len(), sweep.runs.len() - fault_rows);
        let confirmed = |tag: &str, needle: &str| {
            report
                .sched_reports
                .iter()
                .filter(|r| r.subject.starts_with(tag))
                .all(|r| r.findings.iter().any(|f| f.message.contains(needle)))
        };
        assert!(
            confirmed("rr-", "no preemption under round-robin"),
            "{:#?}",
            report.sched_reports
        );
        assert!(
            confirmed("preempt-", "dynamically confirmed"),
            "{:#?}",
            report.sched_reports
        );
        assert!(
            confirmed("cfs-", "dynamically confirmed"),
            "{:#?}",
            report.sched_reports
        );
        // The mailbox-synchrony rows must witness mailbox seizures
        // specifically under the preemptive policy.
        let mailbox = report
            .sched_reports
            .iter()
            .find(|r| r.subject.starts_with("preempt-mailbox"))
            .expect("preempt-mailbox report");
        assert!(
            mailbox
                .findings
                .iter()
                .any(|f| f.message.contains("mailbox seizure")),
            "{}",
            mailbox.render()
        );
    }

    #[test]
    fn scheduler_override_without_kernel_events_leaves_verdict_unreconciled() {
        // `harness verify smoke --scheduler preempt`: the smoke apps do
        // not request kernel instrumentation, so the trace cannot
        // witness preemption either way — the cross-check must say so
        // and must NOT fail.
        let sweep = Sweep {
            name: "override".into(),
            runs: vec![ray_spec("plain", Version::V4, 2)],
        };
        let opts = VerifyOptions {
            races: false,
            scheduler: Some(suprenum::SchedulerKind::Preemptive {
                quantum: des::time::SimDuration::from_millis(5),
            }),
        };
        let report = verify_sweep_opts(&sweep, &opts);
        assert_eq!(report.exit_code(), 0, "{:#?}", report.sched_reports);
        assert!(
            report.sched_reports[0]
                .findings
                .iter()
                .any(|f| f.message.contains("stands unreconciled")),
            "{}",
            report.sched_reports[0].render()
        );
    }

    #[test]
    fn jacobi_sweep_traces_respect_the_spmd_orders() {
        // The second workload through the same verification gate: every
        // worker's exchange-before-compute ordering must hold in every
        // recorded trace, channel by channel.
        let sweep = sweeps::by_name("jacobi", crate::Scale::Quick, 1992).unwrap();
        let report = verify_sweep(&sweep);
        assert_eq!(report.denied, Vec::<String>::new());
        assert_eq!(report.violations(), 0, "{:#?}", report.run_reports);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.run_reports.len(), sweep.runs.len());
        for r in &report.run_reports {
            assert!(
                r.findings
                    .iter()
                    .any(|f| f.message.contains("all proven orderings hold")),
                "{}",
                r.render()
            );
        }
    }
}
