//! Parallel, deterministic experiment-sweep runner.
//!
//! The paper's evaluation is a *sweep* — four program versions, several
//! scenes, plus bundle/window/agent-pool ablations — yet re-running every
//! configuration serially wastes all but one core, and ad-hoc text output
//! loses the one fact monitoring literature insists on: whether each
//! measurement actually *completed*. This crate makes both first-class:
//!
//! * a [`Sweep`] is a named list of [`RunSpec`]s; [`run_sweep`] fans the
//!   runs out over a fixed-size pool of OS threads. Each simulation stays
//!   single-threaded and seed-deterministic, so results are **bit-identical
//!   regardless of worker count** — guaranteed by the per-run
//!   [`RunRecord::trace_digest`] and checked by this crate's tests;
//! * a spec wraps a type-erased [`pipeline::Job`], so one sweep can mix
//!   ray-tracer and Jacobi runs (and any future [`pipeline::Workload`])
//!   in the same queue — the harness never mentions a workload type;
//! * every run yields a [`RunRecord`]: workload id, config fingerprint,
//!   seed, [`RunEnd`], simulated and wall time, events processed,
//!   utilization/intrusion statistics, and the trace digest. A truncated
//!   run (horizon, event budget, operator release, deadlock) is recorded
//!   as such and poisons the sweep's exit code — it can never masquerade
//!   as a valid measurement;
//! * [`SweepReport`] renders the whole sweep as one JSON artifact (written
//!   under `artifacts/` by the CLI) plus a summary table.
//!
//! The `harness` binary exposes the named sweeps of [`sweeps`]:
//!
//! ```text
//! cargo run --release -p harness -- sweep fig10 --workers 4
//! ```

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use des::digest::Fnv64;
use pipeline::Job;
use raysim::config::Version;
use simple::Trace;
use suprenum::RunEnd;

pub mod json;
pub mod sweeps;
pub mod verify;

pub use sweeps::Scale;
pub use verify::{verify_sweep, verify_sweep_with, VerifyReport};

/// One configured run inside a sweep.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Short row label (e.g. `"V3"`, `"bundle-50"`, `"jacobi-w4"`).
    pub label: String,
    /// The frozen measurement job (workload, machine, monitor, seed,
    /// horizon, pre-flight policy) with its workload type erased.
    pub job: Job,
    /// The program version, where the row corresponds to one.
    pub version: Option<Version>,
    /// The paper's utilization number for this row, where it has one.
    pub paper_percent: Option<f64>,
}

// Run specifications cross worker-thread boundaries; keep that fact
// checked at compile time rather than discovered at the spawn site.
const _: fn() = || {
    fn is_send<T: Send>() {}
    is_send::<RunSpec>();
};

/// A named list of runs executed together.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Sweep name (also the default artifact stem).
    pub name: String,
    /// The runs, in presentation order.
    pub runs: Vec<RunSpec>,
}

/// Everything recorded about one executed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's label.
    pub label: String,
    /// The workload's stable identifier (e.g. `"raytracer"`,
    /// `"jacobi"`).
    pub workload: String,
    /// FNV-1a fingerprint of the configuration (workload + machine +
    /// monitor + seed + horizon), hex-encoded. Two records with equal
    /// fingerprints measured the same configuration.
    pub fingerprint: String,
    /// Determinism seed.
    pub seed: u64,
    /// How the run ended.
    pub run_end: RunEnd,
    /// `true` when `run_end` is anything but completion — derived
    /// statistics then describe an interrupted execution.
    pub truncated: bool,
    /// Final simulated time, nanoseconds.
    pub sim_end_ns: u64,
    /// Host wall-clock time of this run, milliseconds. Informational
    /// only: never part of the digest.
    pub wall_ms: f64,
    /// Kernel events the simulation loop processed.
    pub events_processed: u64,
    /// Event-loop throughput: `events_processed` per wall-clock second.
    /// Host-dependent and informational only — never part of the
    /// digest; the benchmark baseline compares this across commits.
    pub events_per_sec: f64,
    /// Events in the merged monitoring trace.
    pub trace_events: usize,
    /// FNV-1a digest over the merged trace and the run outcome,
    /// hex-encoded. Bit-identical across worker counts and across runs
    /// of the same configuration.
    pub trace_digest: String,
    /// Work units the application completed (ray jobs sent, Jacobi
    /// strips relaxed, …) — the workload defines the unit.
    pub work_units: u64,
    /// Mean worker utilization over the productive phase, percent.
    /// `None` when the run truncated or the workload has no notion of
    /// utilization.
    pub utilization_percent: Option<f64>,
    /// Mean worker utilization over the steady (pipeline-full) phase,
    /// where the workload distinguishes one.
    pub steady_percent: Option<f64>,
    /// The paper's number for this row, where it has one.
    pub paper_percent: Option<f64>,
    /// Fraction of CPU time stolen by instrumentation.
    pub intrusion_ratio: f64,
    /// The program version, where the row corresponds to one.
    pub version: Option<Version>,
}

/// The result of executing a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's name.
    pub sweep: String,
    /// Worker threads used.
    pub workers: usize,
    /// One record per spec, in spec order.
    pub records: Vec<RunRecord>,
}

/// The digest of a run: every merged trace event plus the outcome.
/// Wall-clock time and host-side derived floats are deliberately
/// excluded — the digest must depend only on simulated behaviour.
///
/// Public so differential tests can digest traces produced outside the
/// harness (e.g. straight from `pipeline::run_workload`) and compare
/// them against committed goldens.
pub fn trace_digest(trace: &Trace, end_ns: u64, reason: RunEnd, events: u64) -> String {
    let mut h = Fnv64::new();
    for e in trace.events() {
        h.write_u64(e.ts_ns);
        h.write_u64(e.channel as u64);
        h.write_u64(u64::from(e.token.value()));
        h.write_u64(u64::from(e.param.value()));
    }
    h.write_u64(end_ns);
    h.write_u64(reason as u64);
    h.write_u64(events);
    format!("{:016x}", h.finish())
}

/// Executes one spec on the calling thread and derives its record.
/// The workload folds its own metrics (work units, utilization) inside
/// the job — the harness records them without knowing the workload.
pub fn execute(spec: &RunSpec) -> RunRecord {
    let started = Instant::now();
    let run = spec.job.run();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    RunRecord {
        label: spec.label.clone(),
        workload: spec.job.workload_id().to_owned(),
        fingerprint: spec.job.fingerprint(),
        seed: spec.job.seed(),
        run_end: run.outcome.reason,
        truncated: run.outcome.truncated(),
        sim_end_ns: run.outcome.end.as_nanos(),
        wall_ms,
        events_processed: run.outcome.events,
        events_per_sec: if wall_ms > 0.0 {
            run.outcome.events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        trace_events: run.trace.len(),
        trace_digest: trace_digest(
            &run.trace,
            run.outcome.end.as_nanos(),
            run.outcome.reason,
            run.outcome.events,
        ),
        work_units: run.metrics.work_units,
        utilization_percent: run.metrics.utilization_percent,
        steady_percent: run.metrics.steady_percent,
        paper_percent: spec.paper_percent,
        intrusion_ratio: run.intrusion_ratio,
        version: spec.version,
    }
}

/// A sensible worker count for this host: the available parallelism,
/// floor 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every spec of `sweep` across `workers` OS threads and collects
/// the records in spec order.
///
/// Each simulation is single-threaded and seed-deterministic; the pool
/// only decides *which thread* hosts a run, never its event order, so
/// the records (and in particular their trace digests) are bit-identical
/// for any `workers >= 1`.
///
/// # Panics
///
/// Panics if `workers` is zero, or if a worker thread panics (a
/// simulation protocol violation — see `raysim::diag`).
pub fn run_sweep(sweep: &Sweep, workers: usize) -> SweepReport {
    assert!(workers > 0, "sweep needs at least one worker thread");
    let workers = workers.min(sweep.runs.len()).max(1);

    let jobs: Mutex<VecDeque<(usize, &RunSpec)>> =
        Mutex::new(sweep.runs.iter().enumerate().collect());
    let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; sweep.runs.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = jobs.lock().expect("job queue poisoned").pop_front();
                let Some((idx, spec)) = job else { break };
                let record = execute(spec);
                results.lock().expect("result store poisoned")[idx] = Some(record);
            });
        }
    });

    let records = results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|r| r.expect("every job executed"))
        .collect();

    SweepReport {
        sweep: sweep.name.clone(),
        workers,
        records,
    }
}

impl SweepReport {
    /// The records of runs that did not complete.
    pub fn truncated_runs(&self) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| r.truncated).collect()
    }

    /// Process exit code for a CLI wrapping this report: `0` when every
    /// run completed, `2` when any run was truncated.
    pub fn exit_code(&self) -> i32 {
        if self.truncated_runs().is_empty() {
            0
        } else {
            2
        }
    }

    /// Total kernel events processed across all runs.
    pub fn total_events(&self) -> u64 {
        self.records.iter().map(|r| r.events_processed).sum()
    }

    /// Total wall-clock milliseconds across all runs (summed over runs,
    /// so it is worker-count independent — unlike the sweep's elapsed
    /// time).
    pub fn total_wall_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Aggregate event-loop throughput of the whole sweep: total events
    /// over total per-run wall time. `None` when nothing was measured.
    pub fn aggregate_events_per_sec(&self) -> Option<f64> {
        let wall = self.total_wall_ms();
        (wall > 0.0).then(|| self.total_events() as f64 / (wall / 1e3))
    }

    /// Renders this report as a JSON object at the given indentation
    /// depth (the building block for both the sweep artifact and the
    /// bench baseline).
    fn json_at(&self, indent: usize) -> String {
        let runs: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                let mut o = json::JsonObject::new();
                o.str("label", &r.label)
                    .str("workload", &r.workload)
                    .str("fingerprint", &r.fingerprint)
                    .u64("seed", r.seed)
                    .str("run_end", &r.run_end.to_string())
                    .bool("truncated", r.truncated)
                    .u64("sim_end_ns", r.sim_end_ns)
                    .f64("wall_ms", r.wall_ms)
                    .u64("events_processed", r.events_processed)
                    .f64("events_per_sec", r.events_per_sec)
                    .u64("trace_events", r.trace_events as u64)
                    .str("trace_digest", &r.trace_digest)
                    .u64("work_units", r.work_units)
                    .opt_f64("utilization_percent", r.utilization_percent)
                    .opt_f64("steady_percent", r.steady_percent)
                    .opt_f64("paper_percent", r.paper_percent)
                    .f64("intrusion_ratio", r.intrusion_ratio);
                match r.version {
                    Some(v) => o.u64("version", v as u64 + 1),
                    None => o.raw("version", "null"),
                };
                o.render(indent + 2)
            })
            .collect();

        // Schema 3: run objects gained "workload" and renamed
        // "jobs_sent" to the workload-agnostic "work_units".
        let mut root = json::JsonObject::new();
        root.u64("schema_version", 3)
            .str("sweep", &self.sweep)
            .u64("workers", self.workers as u64)
            .bool("all_completed", self.truncated_runs().is_empty())
            .u64("total_events", self.total_events())
            .f64("total_wall_ms", self.total_wall_ms())
            .opt_f64("aggregate_events_per_sec", self.aggregate_events_per_sec())
            .raw("runs", json::array(&runs, indent + 1));
        root.render(indent)
    }

    /// Renders the whole report as a JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = self.json_at(0);
        out.push('\n');
        out
    }

    /// Renders the summary table shown after a sweep.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep '{}' — {} runs on {} worker(s)",
            self.sweep,
            self.records.len(),
            self.workers
        );
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>9} {:>12} {:>10} {:>8} {:>7} {:>7}  {:<16}",
            "run", "workload", "end", "sim end", "events", "work", "util%", "steady%", "digest"
        );
        for r in &self.records {
            let fmt_pct = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |p| format!("{p:.1}"));
            let _ = writeln!(
                out,
                "{:<14} {:>9} {:>9} {:>11.3}s {:>10} {:>8} {:>7} {:>7}  {:<16}",
                r.label,
                r.workload,
                r.run_end.to_string(),
                r.sim_end_ns as f64 / 1e9,
                r.events_processed,
                r.work_units,
                fmt_pct(r.utilization_percent),
                fmt_pct(r.steady_percent),
                r.trace_digest,
            );
        }
        if let Some(throughput) = self.aggregate_events_per_sec() {
            let _ = writeln!(
                out,
                "aggregate: {} events in {:.3}s wall — {:.0} events/s",
                self.total_events(),
                self.total_wall_ms() / 1e3,
                throughput
            );
        }
        for r in self.truncated_runs() {
            let _ = writeln!(
                out,
                "TRUNCATED: '{}' ended by {} at {:.3}s — statistics above describe an \
                 interrupted run",
                r.label,
                r.run_end,
                r.sim_end_ns as f64 / 1e9
            );
        }
        out
    }

    /// One `label<space>digest` line per run — the golden-file format
    /// used by the CI determinism check.
    pub fn digest_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.label);
            out.push(' ');
            out.push_str(&r.trace_digest);
            out.push('\n');
        }
        out
    }

    /// Compares this report's digests against golden `label digest`
    /// lines (as produced by [`SweepReport::digest_lines`]).
    ///
    /// # Errors
    ///
    /// Returns one message per mismatching, missing, or extra line.
    pub fn check_digests(&self, golden: &str) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let golden_lines: Vec<(&str, &str)> = golden
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| l.split_once(' '))
            .collect();
        for r in &self.records {
            match golden_lines.iter().find(|(label, _)| *label == r.label) {
                None => errors.push(format!("run '{}' has no golden digest", r.label)),
                Some((_, expected)) if *expected != r.trace_digest => errors.push(format!(
                    "run '{}' digest {} != golden {expected} — nondeterminism or an \
                     unacknowledged behaviour change",
                    r.label, r.trace_digest
                )),
                Some(_) => {}
            }
        }
        for (label, _) in &golden_lines {
            if !self.records.iter().any(|r| r.label == *label) {
                errors.push(format!("golden digest '{label}' has no matching run"));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Writes the JSON artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifact(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }
}

/// A benchmark baseline: several sweeps measured together, written as
/// one `BENCH_<date>.json` artifact so event-loop throughput can be
/// compared across commits.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// UTC date of the measurement (`YYYY-MM-DD`), also the artifact
    /// stem.
    pub date: String,
    /// One report per benched sweep, in execution order.
    pub reports: Vec<SweepReport>,
}

impl BenchReport {
    /// All records across all benched sweeps.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.reports.iter().flat_map(|r| r.records.iter())
    }

    /// Process exit code: `0` all runs completed, `2` any truncated.
    pub fn exit_code(&self) -> i32 {
        self.reports
            .iter()
            .map(SweepReport::exit_code)
            .max()
            .unwrap_or(0)
    }

    /// Checks every benched run's digest against golden `label digest`
    /// lines (all sweeps pooled — labels are unique across sweeps).
    ///
    /// # Errors
    ///
    /// Returns one message per mismatching, missing, or extra line.
    pub fn check_digests(&self, golden: &str) -> Result<(), Vec<String>> {
        let pooled = SweepReport {
            sweep: "bench".to_owned(),
            workers: 0,
            records: self.records().cloned().collect(),
        };
        pooled.check_digests(golden)
    }

    /// Renders the baseline as a JSON artifact: per-sweep reports (same
    /// schema as sweep artifacts) plus the date.
    pub fn to_json(&self) -> String {
        let sweeps: Vec<String> = self.reports.iter().map(|r| r.json_at(1)).collect();
        let mut root = json::JsonObject::new();
        root.u64("schema_version", 3)
            .str("kind", "bench")
            .str("date", &self.date)
            .raw("sweeps", json::array(&sweeps, 1));
        let mut out = root.render(0);
        out.push('\n');
        out
    }

    /// Writes the JSON artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifact(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }
}

/// Today's UTC date as `YYYY-MM-DD`, derived from the system clock (no
/// external dependencies — civil-from-days per Howard Hinnant's
/// algorithm).
pub fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;
    use pipeline::jacobi::JacobiConfig;
    use pipeline::PipelineConfig;
    use raysim::config::{AppConfig, SceneKind};

    fn tiny_spec(label: &str, seed: u64, horizon_ms: u64) -> RunSpec {
        let mut app = AppConfig::version(Version::V4);
        app.servants = 2;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        app.bundle_size = 8;
        app.pixel_queue_capacity = 64;
        app.write_chunk = 8;
        let mut cfg = PipelineConfig::new(app);
        cfg.seed = seed;
        cfg.horizon = SimTime::from_millis(horizon_ms);
        RunSpec {
            label: label.to_owned(),
            job: Job::new(cfg),
            version: Some(Version::V4),
            paper_percent: None,
        }
    }

    #[test]
    fn completed_run_yields_full_record() {
        let rec = execute(&tiny_spec("ok", 7, 600_000));
        assert_eq!(rec.workload, "raytracer");
        assert_eq!(rec.run_end, RunEnd::Completed);
        assert!(!rec.truncated);
        assert!(rec.events_processed > 0);
        assert!(rec.trace_events > 0);
        assert!(rec.work_units > 0);
        assert!(rec.utilization_percent.is_some());
        assert_eq!(rec.trace_digest.len(), 16);
    }

    #[test]
    fn one_sweep_mixes_workloads() {
        // The whole point of the type-erased job queue: ray-tracer and
        // Jacobi specs side by side in one sweep, each folding its own
        // metrics.
        let mut jacobi = PipelineConfig::new(JacobiConfig {
            workers: 2,
            cells_per_worker: 8,
            iterations: 5,
            ..JacobiConfig::default()
        });
        jacobi.seed = 7;
        let sweep = Sweep {
            name: "mixed".into(),
            runs: vec![
                tiny_spec("rays", 7, 600_000),
                RunSpec {
                    label: "strips".into(),
                    job: Job::new(jacobi),
                    version: None,
                    paper_percent: None,
                },
            ],
        };
        let report = run_sweep(&sweep, 2);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.records[0].workload, "raytracer");
        assert_eq!(report.records[1].workload, "jacobi");
        assert!(report.records.iter().all(|r| r.work_units > 0));
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"jacobi\""));
        assert!(json.contains("\"work_units\""));
    }

    #[test]
    fn truncated_run_is_marked_and_poisons_exit_code() {
        // A 1 ms horizon cannot even finish initialization.
        let sweep = Sweep {
            name: "trunc".into(),
            runs: vec![tiny_spec("cut", 7, 1)],
        };
        let report = run_sweep(&sweep, 1);
        let rec = &report.records[0];
        assert!(rec.truncated);
        assert_eq!(rec.run_end, RunEnd::Horizon);
        assert_eq!(rec.utilization_percent, None);
        assert_eq!(report.exit_code(), 2);
        assert!(report.to_json().contains("\"truncated\": true"));
        assert!(report.render_table().contains("TRUNCATED"));
    }

    #[test]
    fn worker_count_does_not_change_digests() {
        let sweep = Sweep {
            name: "det".into(),
            runs: (0..4)
                .map(|i| tiny_spec(&format!("s{i}"), 100 + i, 600_000))
                .collect(),
        };
        let serial = run_sweep(&sweep, 1);
        let parallel = run_sweep(&sweep, 4);
        let digests = |r: &SweepReport| {
            r.records
                .iter()
                .map(|x| x.trace_digest.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(digests(&serial), digests(&parallel));
        assert!(serial.check_digests(&parallel.digest_lines()).is_ok());
    }

    #[test]
    fn digest_check_reports_mismatches() {
        let report = run_sweep(
            &Sweep {
                name: "g".into(),
                runs: vec![tiny_spec("a", 1, 600_000)],
            },
            1,
        );
        let errs = report
            .check_digests("a 0000000000000000\nghost 1111111111111111\n")
            .unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs[0].contains("digest"));
        assert!(errs[1].contains("ghost"));
    }

    #[test]
    fn same_seed_same_fingerprint_and_digest() {
        let a = execute(&tiny_spec("x", 42, 600_000));
        let b = execute(&tiny_spec("x", 42, 600_000));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.trace_digest, b.trace_digest);
        let c = execute(&tiny_spec("x", 43, 600_000));
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
