//! Parallel, deterministic experiment-sweep runner.
//!
//! The paper's evaluation is a *sweep* — four program versions, several
//! scenes, plus bundle/window/agent-pool ablations — yet re-running every
//! configuration serially wastes all but one core, and ad-hoc text output
//! loses the one fact monitoring literature insists on: whether each
//! measurement actually *completed*. This crate makes both first-class:
//!
//! * a [`Sweep`] is a named list of [`RunSpec`]s; [`run_sweep`] fans the
//!   runs out over a fixed-size pool of OS threads. Each simulation stays
//!   single-threaded and seed-deterministic, so results are **bit-identical
//!   regardless of worker count** — guaranteed by the per-run
//!   [`RunRecord::trace_digest`] and checked by this crate's tests;
//! * a spec wraps a type-erased [`pipeline::Job`], so one sweep can mix
//!   ray-tracer and Jacobi runs (and any future [`pipeline::Workload`])
//!   in the same queue — the harness never mentions a workload type;
//! * every run yields a [`RunRecord`]: workload id, config fingerprint,
//!   seed, [`RunEnd`], simulated and wall time, events processed,
//!   utilization/intrusion statistics, and the trace digest. A truncated
//!   run (horizon, event budget, operator release, deadlock) is recorded
//!   as such and poisons the sweep's exit code — it can never masquerade
//!   as a valid measurement;
//! * [`SweepReport`] renders the whole sweep as one JSON artifact (written
//!   under `artifacts/` by the CLI) plus a summary table.
//!
//! The `harness` binary exposes the named sweeps of [`sweeps`]:
//!
//! ```text
//! cargo run --release -p harness -- sweep fig10 --workers 4
//! ```

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use des::digest::Fnv64;
use pipeline::Job;
use raysim::config::{AppConfig, Version};
use simple::Trace;
use suprenum::RunEnd;

pub mod json;
pub mod sweeps;
pub mod verify;

pub use sweeps::Scale;
pub use verify::{verify_sweep, verify_sweep_opts, verify_sweep_with, VerifyOptions, VerifyReport};

/// Version of the JSON artifact schema this harness writes (sweep
/// artifacts and bench baselines alike). Bumped whenever a field is
/// removed or changes meaning; artifacts from different schema versions
/// must never be compared — see [`artifact_schema_version`]. Purely
/// additive fields (readers treat absence as the documented default,
/// e.g. `engine_shards` absent = 1) do not bump the schema, so newer
/// binaries stay comparable against committed baselines.
pub const SCHEMA_VERSION: u64 = 4;

/// Extracts the `schema_version` field from an artifact's JSON text.
///
/// # Errors
///
/// Returns a message when the field is absent or malformed — such a
/// file is not a harness artifact at all.
pub fn artifact_schema_version(json_text: &str) -> Result<u64, String> {
    let key = "\"schema_version\":";
    let at = json_text
        .find(key)
        .ok_or_else(|| "artifact has no schema_version field".to_owned())?;
    let rest = json_text[at + key.len()..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits
        .parse()
        .map_err(|_| "artifact schema_version is not a number".to_owned())
}

/// Refuses a comparison between this harness and an artifact written at
/// a different schema version.
///
/// Fields change meaning across schemas (schema 4 made `wall_ms`
/// engine-only, for instance), so comparing across versions silently
/// produces nonsense; a hard error with a regeneration hint is better.
///
/// # Errors
///
/// Returns a clear, actionable message when `json_text` was written at
/// a schema other than [`SCHEMA_VERSION`] (or is not an artifact).
pub fn check_artifact_schema(json_text: &str, what: &str) -> Result<(), String> {
    let found = artifact_schema_version(json_text).map_err(|e| format!("{what}: {e}"))?;
    if found == SCHEMA_VERSION {
        Ok(())
    } else {
        Err(format!(
            "{what} was written at schema_version {found}, but this harness writes \
             schema_version {SCHEMA_VERSION} — comparing across schemas is meaningless \
             (fields were added or changed meaning); regenerate the artifact with the \
             current binary"
        ))
    }
}

/// One configured run inside a sweep.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Short row label (e.g. `"V3"`, `"bundle-50"`, `"jacobi-w4"`).
    pub label: String,
    /// The frozen measurement job (workload, machine, monitor, seed,
    /// horizon, pre-flight policy) with its workload type erased.
    pub job: Job,
    /// The program version, where the row corresponds to one.
    pub version: Option<Version>,
    /// The actual application shape the job was built from, where the
    /// row is a ray-tracer run. The job freezes its configuration
    /// behind a closure, so this is the only place the true servant
    /// count / window / queue capacity survive for `harness verify` to
    /// cross-check the structural invariant certificates against the
    /// recorded trace. `None` for non-ray workloads.
    pub app: Option<AppConfig>,
    /// The paper's utilization number for this row, where it has one.
    pub paper_percent: Option<f64>,
    /// The probe-plane fault injection this row runs with, where it is
    /// a fault-study row. `harness verify` skips the measurement-plane
    /// cross-checks for such rows — injected drops, corruptions, and
    /// clock drift are the *subject* of the measurement, so a
    /// happens-before anomaly there is data, not a defect.
    pub faults: Option<pipeline::FaultConfig>,
}

// Run specifications cross worker-thread boundaries; keep that fact
// checked at compile time rather than discovered at the spawn site.
const _: fn() = || {
    fn is_send<T: Send>() {}
    is_send::<RunSpec>();
};

/// A named list of runs executed together.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Sweep name (also the default artifact stem).
    pub name: String,
    /// The runs, in presentation order.
    pub runs: Vec<RunSpec>,
}

/// Everything recorded about one executed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's label.
    pub label: String,
    /// The workload's stable identifier (e.g. `"raytracer"`,
    /// `"jacobi"`).
    pub workload: String,
    /// FNV-1a fingerprint of the configuration (workload + machine +
    /// monitor + seed + horizon), hex-encoded. Two records with equal
    /// fingerprints measured the same configuration.
    pub fingerprint: String,
    /// Determinism seed.
    pub seed: u64,
    /// How the run ended.
    pub run_end: RunEnd,
    /// `true` when `run_end` is anything but completion — derived
    /// statistics then describe an interrupted execution.
    pub truncated: bool,
    /// Final simulated time, nanoseconds.
    pub sim_end_ns: u64,
    /// Host wall-clock time of the simulation engine (and monitor
    /// plane), milliseconds — pre-flight analysis excluded, see
    /// [`analysis_ms`](Self::analysis_ms). Informational only: never
    /// part of the digest.
    pub wall_ms: f64,
    /// Host wall-clock time the pre-flight analysis took, milliseconds.
    /// Reported separately so engine throughput is not diluted by a
    /// run-independent static-analysis cost. Informational only.
    pub analysis_ms: f64,
    /// Error findings the pre-flight analysis reported (0 when the
    /// policy was `Off`). Additive schema-4 fields — absent in older
    /// artifacts, read back as 0 — so `harness compare` can surface
    /// analysis drift (a proof or defect appearing between commits)
    /// alongside throughput drift.
    pub analysis_errors: u64,
    /// Warning findings the pre-flight analysis reported.
    pub analysis_warnings: u64,
    /// Informational findings (proofs of absence, certificates).
    pub analysis_infos: u64,
    /// Kernel events the simulation loop processed.
    pub events_processed: u64,
    /// Event-loop throughput: `events_processed` per engine wall-clock
    /// second (`wall_ms`). Host-dependent and informational only — never
    /// part of the digest; the benchmark baseline compares this across
    /// commits.
    pub events_per_sec: f64,
    /// Monitor-shard count the run executed with. Sharding is
    /// behaviourally invisible — digests are bit-identical for any
    /// count — so this only contextualizes the wall-clock numbers.
    pub shards: usize,
    /// Engine worker-thread count the run executed with. Like monitor
    /// sharding, behaviourally invisible: a multi-cluster machine
    /// always partitions per cluster, this only packs the shards onto
    /// threads. Additive schema-4 field — absent in older artifacts,
    /// which all ran with 1.
    pub engine_shards: usize,
    /// Canonical name of the kernel scheduling policy the run executed
    /// under (see [`suprenum::SchedulerKind::name`]). Unlike sharding
    /// this *does* change simulated behaviour, so `harness compare`
    /// refuses to diff records across policies. Additive schema-4
    /// field — absent in older artifacts, which all ran round-robin
    /// (`"rr"`).
    pub scheduler: String,
    /// Events in the merged monitoring trace.
    pub trace_events: usize,
    /// FNV-1a digest over the merged trace and the run outcome,
    /// hex-encoded. Bit-identical across worker counts and across runs
    /// of the same configuration.
    pub trace_digest: String,
    /// Work units the application completed (ray jobs sent, Jacobi
    /// strips relaxed, …) — the workload defines the unit.
    pub work_units: u64,
    /// Mean worker utilization over the productive phase, percent.
    /// `None` when the run truncated or the workload has no notion of
    /// utilization.
    pub utilization_percent: Option<f64>,
    /// Mean worker utilization over the steady (pipeline-full) phase,
    /// where the workload distinguishes one.
    pub steady_percent: Option<f64>,
    /// The paper's number for this row, where it has one.
    pub paper_percent: Option<f64>,
    /// Fraction of CPU time stolen by instrumentation.
    pub intrusion_ratio: f64,
    /// The program version, where the row corresponds to one.
    pub version: Option<Version>,
}

/// The result of executing a whole sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The sweep's name.
    pub sweep: String,
    /// Worker threads used.
    pub workers: usize,
    /// One record per spec, in spec order.
    pub records: Vec<RunRecord>,
}

/// One run's comparison-relevant fields, read back from a written
/// artifact (sweep or bench — bench baselines embed sweep reports).
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRun {
    /// The run's row label (unique within an artifact).
    pub label: String,
    /// The run's trace digest — must match across artifacts of the same
    /// configuration, or the comparison is meaningless.
    pub trace_digest: String,
    /// Engine throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Engine wall time, milliseconds.
    pub wall_ms: f64,
    /// Pre-flight finding counts (errors, warnings, infos). Additive
    /// schema-4 fields — zero when the artifact predates them — used
    /// to flag analysis drift between artifacts of the same
    /// configuration.
    pub analysis_counts: (u64, u64, u64),
    /// Kernel scheduling policy the run executed under. Additive
    /// schema-4 field — artifacts written before it exist all ran
    /// round-robin, so absence reads back as `"rr"`.
    pub scheduler: String,
}

/// Reads the per-run rows back out of an artifact's JSON text.
///
/// The artifact writer emits exactly one field per line and every run
/// object opens with its `label` field, so a line-oriented scan
/// suffices — no general JSON parser is vendored for this.
pub fn parse_artifact_runs(json_text: &str) -> Vec<ArtifactRun> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim_start().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(','))
    }
    fn str_value(raw: &str) -> String {
        raw.trim_matches('"').to_owned()
    }

    let mut runs: Vec<ArtifactRun> = Vec::new();
    for line in json_text.lines() {
        if let Some(raw) = field(line, "label") {
            runs.push(ArtifactRun {
                label: str_value(raw),
                trace_digest: String::new(),
                events_per_sec: 0.0,
                wall_ms: 0.0,
                analysis_counts: (0, 0, 0),
                scheduler: "rr".to_owned(),
            });
        } else if let Some(run) = runs.last_mut() {
            if let Some(raw) = field(line, "trace_digest") {
                run.trace_digest = str_value(raw);
            } else if let Some(raw) = field(line, "events_per_sec") {
                run.events_per_sec = raw.parse().unwrap_or(0.0);
            } else if let Some(raw) = field(line, "wall_ms") {
                run.wall_ms = raw.parse().unwrap_or(0.0);
            } else if let Some(raw) = field(line, "analysis_errors") {
                run.analysis_counts.0 = raw.parse().unwrap_or(0);
            } else if let Some(raw) = field(line, "analysis_warnings") {
                run.analysis_counts.1 = raw.parse().unwrap_or(0);
            } else if let Some(raw) = field(line, "analysis_infos") {
                run.analysis_counts.2 = raw.parse().unwrap_or(0);
            } else if let Some(raw) = field(line, "scheduler") {
                run.scheduler = str_value(raw);
            }
        }
    }
    runs
}

/// Compares two artifacts run by run: digests must match (same
/// simulated behaviour), then throughput is contrasted.
///
/// Both artifacts must carry the current [`SCHEMA_VERSION`] — fields
/// changed meaning across schemas, so cross-schema comparison is
/// refused outright rather than producing silently wrong deltas.
///
/// # Errors
///
/// One message per problem: schema mismatch, run present in only one
/// artifact, or digest divergence.
pub fn compare_artifacts(baseline: &str, candidate: &str) -> Result<String, Vec<String>> {
    let mut errors = Vec::new();
    if let Err(e) = check_artifact_schema(baseline, "baseline") {
        errors.push(e);
    }
    if let Err(e) = check_artifact_schema(candidate, "candidate") {
        errors.push(e);
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    let base_runs = parse_artifact_runs(baseline);
    let cand_runs = parse_artifact_runs(candidate);
    let mut rows = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        rows,
        "{:<14} {:>14} {:>14} {:>8}",
        "run", "base ev/s", "cand ev/s", "speedup"
    );
    // Aggregates over the digest-matched pairs: total throughput is
    // events over wall time on each side (events reconstructed as
    // ev/s × wall), the summary speedup is the geometric mean of the
    // per-run ratios so no single long run dominates.
    let mut log_speedup_sum = 0.0f64;
    let mut matched = 0u32;
    // Analysis drift is advisory, not an error: the digests already
    // prove the simulated behaviour matched, so a changed finding count
    // means the *analyzer* changed between artifacts (a proof appeared,
    // a lint was added) — worth a line, not a refusal.
    let mut analysis_drift: Vec<String> = Vec::new();
    let (mut base_events, mut base_wall_ms) = (0.0f64, 0.0f64);
    let (mut cand_events, mut cand_wall_ms) = (0.0f64, 0.0f64);
    for b in &base_runs {
        let Some(c) = cand_runs.iter().find(|c| c.label == b.label) else {
            errors.push(format!("run '{}' is missing from the candidate", b.label));
            continue;
        };
        if b.scheduler != c.scheduler {
            // Like cross-schema comparisons: different scheduling
            // policies simulate different behaviour by construction, so
            // a throughput delta between them is meaningless.
            errors.push(format!(
                "run '{}' executed under scheduler '{}' but the baseline ran '{}' — \
                 cross-scheduler comparison is meaningless; re-run both sides under \
                 the same --scheduler",
                b.label, c.scheduler, b.scheduler
            ));
            continue;
        }
        if b.trace_digest != c.trace_digest {
            errors.push(format!(
                "run '{}' digest {} != baseline {} — different simulated behaviour, \
                 throughput comparison is invalid",
                b.label, c.trace_digest, b.trace_digest
            ));
            continue;
        }
        if b.analysis_counts != c.analysis_counts {
            let fmt = |(e, w, i): (u64, u64, u64)| format!("{e} error(s)/{w} warning(s)/{i} info");
            analysis_drift.push(format!(
                "run '{}': analysis findings drifted, {} -> {}",
                b.label,
                fmt(b.analysis_counts),
                fmt(c.analysis_counts)
            ));
        }
        let speedup = if b.events_per_sec > 0.0 {
            c.events_per_sec / b.events_per_sec
        } else {
            0.0
        };
        if speedup > 0.0 {
            log_speedup_sum += speedup.ln();
            matched += 1;
        }
        base_events += b.events_per_sec * (b.wall_ms / 1e3);
        base_wall_ms += b.wall_ms;
        cand_events += c.events_per_sec * (c.wall_ms / 1e3);
        cand_wall_ms += c.wall_ms;
        let _ = writeln!(
            rows,
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x",
            b.label, b.events_per_sec, c.events_per_sec, speedup
        );
    }
    if matched > 0 {
        let geo_mean = (log_speedup_sum / f64::from(matched)).exp();
        let total = |events: f64, wall_ms: f64| {
            if wall_ms > 0.0 {
                events / (wall_ms / 1e3)
            } else {
                0.0
            }
        };
        let _ = writeln!(
            rows,
            "{:<14} {:>14.0} {:>14.0} {:>7.2}x  (geometric mean; totals are events/s)",
            "aggregate",
            total(base_events, base_wall_ms),
            total(cand_events, cand_wall_ms),
            geo_mean
        );
    }
    for c in &cand_runs {
        if !base_runs.iter().any(|b| b.label == c.label) {
            errors.push(format!("run '{}' is missing from the baseline", c.label));
        }
    }
    if !analysis_drift.is_empty() {
        rows.push('\n');
        for note in &analysis_drift {
            let _ = writeln!(rows, "note: {note}");
        }
    }
    if errors.is_empty() {
        Ok(rows)
    } else {
        Err(errors)
    }
}

/// The digest of a run: every merged trace event plus the outcome.
/// Wall-clock time and host-side derived floats are deliberately
/// excluded — the digest must depend only on simulated behaviour.
///
/// Public so differential tests can digest traces produced outside the
/// harness (e.g. straight from `pipeline::run_workload`) and compare
/// them against committed goldens.
pub fn trace_digest(trace: &Trace, end_ns: u64, reason: RunEnd, events: u64) -> String {
    let mut h = Fnv64::new();
    for e in trace.events() {
        h.write_u64(e.ts_ns);
        h.write_u64(e.channel as u64);
        h.write_u64(u64::from(e.token.value()));
        h.write_u64(u64::from(e.param.value()));
    }
    h.write_u64(end_ns);
    h.write_u64(reason as u64);
    h.write_u64(events);
    format!("{:016x}", h.finish())
}

/// Executes one spec on the calling thread and derives its record.
/// The workload folds its own metrics (work units, utilization) inside
/// the job — the harness records them without knowing the workload.
pub fn execute(spec: &RunSpec) -> RunRecord {
    let started = Instant::now();
    let run = spec.job.run();
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let analysis_ms = run.analysis.as_secs_f64() * 1e3;
    // Engine time: the pre-flight analyzer runs once per configuration
    // regardless of scene scale, so folding it into throughput would
    // punish short runs and mask engine regressions.
    let wall_ms = (total_ms - analysis_ms).max(0.0);

    RunRecord {
        label: spec.label.clone(),
        workload: spec.job.workload_id().to_owned(),
        fingerprint: spec.job.fingerprint(),
        seed: spec.job.seed(),
        run_end: run.outcome.reason,
        truncated: run.outcome.truncated(),
        sim_end_ns: run.outcome.end.as_nanos(),
        wall_ms,
        analysis_ms,
        analysis_errors: run.preflight.as_ref().map_or(0, |p| p.errors as u64),
        analysis_warnings: run.preflight.as_ref().map_or(0, |p| p.warnings as u64),
        analysis_infos: run.preflight.as_ref().map_or(0, |p| p.infos as u64),
        events_processed: run.outcome.events,
        events_per_sec: if wall_ms > 0.0 {
            run.outcome.events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        shards: run.shards,
        engine_shards: run.engine_shards,
        scheduler: run.scheduler.name(),
        trace_events: run.trace.len(),
        trace_digest: trace_digest(
            &run.trace,
            run.outcome.end.as_nanos(),
            run.outcome.reason,
            run.outcome.events,
        ),
        work_units: run.metrics.work_units,
        utilization_percent: run.metrics.utilization_percent,
        steady_percent: run.metrics.steady_percent,
        paper_percent: spec.paper_percent,
        intrusion_ratio: run.intrusion_ratio,
        version: spec.version,
    }
}

/// A sensible worker count for this host: the available parallelism,
/// floor 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every spec of `sweep` across `workers` OS threads and collects
/// the records in spec order.
///
/// Each simulation is single-threaded and seed-deterministic; the pool
/// only decides *which thread* hosts a run, never its event order, so
/// the records (and in particular their trace digests) are bit-identical
/// for any `workers >= 1`.
///
/// # Panics
///
/// Panics if `workers` is zero, or if a worker thread panics (a
/// simulation protocol violation — see `raysim::diag`).
pub fn run_sweep(sweep: &Sweep, workers: usize) -> SweepReport {
    assert!(workers > 0, "sweep needs at least one worker thread");
    let workers = workers.min(sweep.runs.len()).max(1);

    let jobs: Mutex<VecDeque<(usize, &RunSpec)>> =
        Mutex::new(sweep.runs.iter().enumerate().collect());
    let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; sweep.runs.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = jobs.lock().expect("job queue poisoned").pop_front();
                let Some((idx, spec)) = job else { break };
                let record = execute(spec);
                results.lock().expect("result store poisoned")[idx] = Some(record);
            });
        }
    });

    let records = results
        .into_inner()
        .expect("result store poisoned")
        .into_iter()
        .map(|r| r.expect("every job executed"))
        .collect();

    SweepReport {
        sweep: sweep.name.clone(),
        workers,
        records,
    }
}

impl SweepReport {
    /// The records of runs that did not complete.
    pub fn truncated_runs(&self) -> Vec<&RunRecord> {
        self.records.iter().filter(|r| r.truncated).collect()
    }

    /// Process exit code for a CLI wrapping this report: `0` when every
    /// run completed, `2` when any run was truncated.
    pub fn exit_code(&self) -> i32 {
        if self.truncated_runs().is_empty() {
            0
        } else {
            2
        }
    }

    /// Total kernel events processed across all runs.
    pub fn total_events(&self) -> u64 {
        self.records.iter().map(|r| r.events_processed).sum()
    }

    /// Total wall-clock milliseconds across all runs (summed over runs,
    /// so it is worker-count independent — unlike the sweep's elapsed
    /// time).
    pub fn total_wall_ms(&self) -> f64 {
        self.records.iter().map(|r| r.wall_ms).sum()
    }

    /// Aggregate event-loop throughput of the whole sweep: total events
    /// over total per-run wall time. `None` when nothing was measured.
    pub fn aggregate_events_per_sec(&self) -> Option<f64> {
        let wall = self.total_wall_ms();
        (wall > 0.0).then(|| self.total_events() as f64 / (wall / 1e3))
    }

    /// Renders this report as a JSON object at the given indentation
    /// depth (the building block for both the sweep artifact and the
    /// bench baseline).
    fn json_at(&self, indent: usize) -> String {
        let runs: Vec<String> = self
            .records
            .iter()
            .map(|r| {
                let mut o = json::JsonObject::new();
                o.str("label", &r.label)
                    .str("workload", &r.workload)
                    .str("fingerprint", &r.fingerprint)
                    .u64("seed", r.seed)
                    .str("run_end", &r.run_end.to_string())
                    .bool("truncated", r.truncated)
                    .u64("sim_end_ns", r.sim_end_ns)
                    .f64("wall_ms", r.wall_ms)
                    .f64("analysis_ms", r.analysis_ms)
                    .u64("analysis_errors", r.analysis_errors)
                    .u64("analysis_warnings", r.analysis_warnings)
                    .u64("analysis_infos", r.analysis_infos)
                    .u64("events_processed", r.events_processed)
                    .f64("events_per_sec", r.events_per_sec)
                    .u64("shards", r.shards as u64)
                    .u64("engine_shards", r.engine_shards as u64)
                    .str("scheduler", &r.scheduler)
                    .u64("trace_events", r.trace_events as u64)
                    .str("trace_digest", &r.trace_digest)
                    .u64("work_units", r.work_units)
                    .opt_f64("utilization_percent", r.utilization_percent)
                    .opt_f64("steady_percent", r.steady_percent)
                    .opt_f64("paper_percent", r.paper_percent)
                    .f64("intrusion_ratio", r.intrusion_ratio);
                match r.version {
                    Some(v) => o.u64("version", v as u64 + 1),
                    None => o.raw("version", "null"),
                };
                o.render(indent + 2)
            })
            .collect();

        // Schema 4: run objects gained "shards" and "analysis_ms", and
        // "wall_ms"/"events_per_sec" became engine-only (pre-flight
        // analysis time excluded). "engine_shards" and the
        // "analysis_errors"/"analysis_warnings"/"analysis_infos"
        // per-severity finding counts are additive schema-4 fields
        // (absent reads as 1 / 0 / 0 / 0). Schema 3: run objects gained
        // "workload" and renamed "jobs_sent" to the workload-agnostic
        // "work_units".
        let mut root = json::JsonObject::new();
        root.u64("schema_version", SCHEMA_VERSION)
            .str("sweep", &self.sweep)
            .u64("workers", self.workers as u64)
            .bool("all_completed", self.truncated_runs().is_empty())
            .u64("total_events", self.total_events())
            .f64("total_wall_ms", self.total_wall_ms())
            .opt_f64("aggregate_events_per_sec", self.aggregate_events_per_sec())
            .raw("runs", json::array(&runs, indent + 1));
        root.render(indent)
    }

    /// Renders the whole report as a JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = self.json_at(0);
        out.push('\n');
        out
    }

    /// Renders the summary table shown after a sweep.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sweep '{}' — {} runs on {} worker(s)",
            self.sweep,
            self.records.len(),
            self.workers
        );
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>9} {:>12} {:>10} {:>8} {:>7} {:>7}  {:<16}",
            "run", "workload", "end", "sim end", "events", "work", "util%", "steady%", "digest"
        );
        for r in &self.records {
            let fmt_pct = |v: Option<f64>| v.map_or_else(|| "-".to_owned(), |p| format!("{p:.1}"));
            let _ = writeln!(
                out,
                "{:<14} {:>9} {:>9} {:>11.3}s {:>10} {:>8} {:>7} {:>7}  {:<16}",
                r.label,
                r.workload,
                r.run_end.to_string(),
                r.sim_end_ns as f64 / 1e9,
                r.events_processed,
                r.work_units,
                fmt_pct(r.utilization_percent),
                fmt_pct(r.steady_percent),
                r.trace_digest,
            );
        }
        if let Some(throughput) = self.aggregate_events_per_sec() {
            let _ = writeln!(
                out,
                "aggregate: {} events in {:.3}s wall — {:.0} events/s",
                self.total_events(),
                self.total_wall_ms() / 1e3,
                throughput
            );
        }
        for r in self.truncated_runs() {
            let _ = writeln!(
                out,
                "TRUNCATED: '{}' ended by {} at {:.3}s — statistics above describe an \
                 interrupted run",
                r.label,
                r.run_end,
                r.sim_end_ns as f64 / 1e9
            );
        }
        out
    }

    /// One `label<space>digest` line per run — the golden-file format
    /// used by the CI determinism check.
    pub fn digest_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.label);
            out.push(' ');
            out.push_str(&r.trace_digest);
            out.push('\n');
        }
        out
    }

    /// Compares this report's digests against golden `label digest`
    /// lines (as produced by [`SweepReport::digest_lines`]).
    ///
    /// # Errors
    ///
    /// Returns one message per mismatching, missing, or extra line.
    pub fn check_digests(&self, golden: &str) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let golden_lines: Vec<(&str, &str)> = golden
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| l.split_once(' '))
            .collect();
        for r in &self.records {
            match golden_lines.iter().find(|(label, _)| *label == r.label) {
                None => errors.push(format!("run '{}' has no golden digest", r.label)),
                Some((_, expected)) if *expected != r.trace_digest => errors.push(format!(
                    "run '{}' digest {} != golden {expected} — nondeterminism or an \
                     unacknowledged behaviour change",
                    r.label, r.trace_digest
                )),
                Some(_) => {}
            }
        }
        for (label, _) in &golden_lines {
            if !self.records.iter().any(|r| r.label == *label) {
                errors.push(format!("golden digest '{label}' has no matching run"));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Writes the JSON artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifact(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }
}

/// A benchmark baseline: several sweeps measured together, written as
/// one `BENCH_<date>.json` artifact so event-loop throughput can be
/// compared across commits.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// UTC date of the measurement (`YYYY-MM-DD`), also the artifact
    /// stem.
    pub date: String,
    /// One report per benched sweep, in execution order.
    pub reports: Vec<SweepReport>,
}

impl BenchReport {
    /// All records across all benched sweeps.
    pub fn records(&self) -> impl Iterator<Item = &RunRecord> {
        self.reports.iter().flat_map(|r| r.records.iter())
    }

    /// Process exit code: `0` all runs completed, `2` any truncated.
    pub fn exit_code(&self) -> i32 {
        self.reports
            .iter()
            .map(SweepReport::exit_code)
            .max()
            .unwrap_or(0)
    }

    /// Checks every benched run's digest against golden `label digest`
    /// lines (all sweeps pooled — labels are unique across sweeps).
    ///
    /// # Errors
    ///
    /// Returns one message per mismatching, missing, or extra line.
    pub fn check_digests(&self, golden: &str) -> Result<(), Vec<String>> {
        let pooled = SweepReport {
            sweep: "bench".to_owned(),
            workers: 0,
            records: self.records().cloned().collect(),
        };
        pooled.check_digests(golden)
    }

    /// Renders the baseline as a JSON artifact: per-sweep reports (same
    /// schema as sweep artifacts) plus the date.
    pub fn to_json(&self) -> String {
        let sweeps: Vec<String> = self.reports.iter().map(|r| r.json_at(1)).collect();
        let mut root = json::JsonObject::new();
        root.u64("schema_version", SCHEMA_VERSION)
            .str("kind", "bench")
            .str("date", &self.date)
            .raw("sweeps", json::array(&sweeps, 1));
        let mut out = root.render(0);
        out.push('\n');
        out
    }

    /// Writes the JSON artifact to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_artifact(&self, path: &Path) -> std::io::Result<PathBuf> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path.to_path_buf())
    }
}

/// Today's UTC date as `YYYY-MM-DD`, derived from the system clock (no
/// external dependencies — civil-from-days per Howard Hinnant's
/// algorithm).
pub fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Converts days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use des::time::SimTime;
    use pipeline::jacobi::JacobiConfig;
    use pipeline::PipelineConfig;
    use raysim::config::{AppConfig, SceneKind};

    fn tiny_spec(label: &str, seed: u64, horizon_ms: u64) -> RunSpec {
        let mut app = AppConfig::version(Version::V4);
        app.servants = 2;
        app.scene = SceneKind::Quickstart;
        app.width = 8;
        app.height = 8;
        app.bundle_size = 8;
        app.pixel_queue_capacity = 64;
        app.write_chunk = 8;
        let mut cfg = PipelineConfig::new(app.clone());
        cfg.seed = seed;
        cfg.horizon = SimTime::from_millis(horizon_ms);
        RunSpec {
            label: label.to_owned(),
            job: Job::new(cfg),
            version: Some(Version::V4),
            app: Some(app),
            paper_percent: None,
            faults: None,
        }
    }

    #[test]
    fn completed_run_yields_full_record() {
        let rec = execute(&tiny_spec("ok", 7, 600_000));
        assert_eq!(rec.workload, "raytracer");
        assert_eq!(rec.run_end, RunEnd::Completed);
        assert!(!rec.truncated);
        assert!(rec.events_processed > 0);
        assert!(rec.trace_events > 0);
        assert!(rec.work_units > 0);
        assert!(rec.utilization_percent.is_some());
        assert_eq!(rec.trace_digest.len(), 16);
    }

    #[test]
    fn one_sweep_mixes_workloads() {
        // The whole point of the type-erased job queue: ray-tracer and
        // Jacobi specs side by side in one sweep, each folding its own
        // metrics.
        let mut jacobi = PipelineConfig::new(JacobiConfig {
            workers: 2,
            cells_per_worker: 8,
            iterations: 5,
            ..JacobiConfig::default()
        });
        jacobi.seed = 7;
        let sweep = Sweep {
            name: "mixed".into(),
            runs: vec![
                tiny_spec("rays", 7, 600_000),
                RunSpec {
                    label: "strips".into(),
                    job: Job::new(jacobi),
                    version: None,
                    app: None,
                    paper_percent: None,
                    faults: None,
                },
            ],
        };
        let report = run_sweep(&sweep, 2);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.records[0].workload, "raytracer");
        assert_eq!(report.records[1].workload, "jacobi");
        assert!(report.records.iter().all(|r| r.work_units > 0));
        let json = report.to_json();
        assert!(json.contains("\"workload\": \"jacobi\""));
        assert!(json.contains("\"work_units\""));
    }

    #[test]
    fn truncated_run_is_marked_and_poisons_exit_code() {
        // A 1 ms horizon cannot even finish initialization.
        let sweep = Sweep {
            name: "trunc".into(),
            runs: vec![tiny_spec("cut", 7, 1)],
        };
        let report = run_sweep(&sweep, 1);
        let rec = &report.records[0];
        assert!(rec.truncated);
        assert_eq!(rec.run_end, RunEnd::Horizon);
        assert_eq!(rec.utilization_percent, None);
        assert_eq!(report.exit_code(), 2);
        assert!(report.to_json().contains("\"truncated\": true"));
        assert!(report.render_table().contains("TRUNCATED"));
    }

    #[test]
    fn worker_count_does_not_change_digests() {
        let sweep = Sweep {
            name: "det".into(),
            runs: (0..4)
                .map(|i| tiny_spec(&format!("s{i}"), 100 + i, 600_000))
                .collect(),
        };
        let serial = run_sweep(&sweep, 1);
        let parallel = run_sweep(&sweep, 4);
        let digests = |r: &SweepReport| {
            r.records
                .iter()
                .map(|x| x.trace_digest.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(digests(&serial), digests(&parallel));
        assert!(serial.check_digests(&parallel.digest_lines()).is_ok());
    }

    #[test]
    fn digest_check_reports_mismatches() {
        let report = run_sweep(
            &Sweep {
                name: "g".into(),
                runs: vec![tiny_spec("a", 1, 600_000)],
            },
            1,
        );
        let errs = report
            .check_digests("a 0000000000000000\nghost 1111111111111111\n")
            .unwrap_err();
        assert_eq!(errs.len(), 2);
        assert!(errs[0].contains("digest"));
        assert!(errs[1].contains("ghost"));
    }

    #[test]
    fn record_separates_engine_and_analysis_time() {
        let rec = execute(&tiny_spec("t", 7, 600_000));
        assert_eq!(rec.shards, 1);
        assert!(rec.analysis_ms >= 0.0);
        assert!(rec.wall_ms >= 0.0);
        assert!(rec.events_per_sec > 0.0);
        let report = run_sweep(
            &Sweep {
                name: "t".into(),
                runs: vec![tiny_spec("t", 7, 600_000)],
            },
            1,
        );
        let json = report.to_json();
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"analysis_ms\""));
        assert!(json.contains("\"shards\": 1"));
        assert!(json.contains("\"engine_shards\": 1"));
    }

    #[test]
    fn artifact_roundtrip_and_self_compare() {
        let report = run_sweep(
            &Sweep {
                name: "rt".into(),
                runs: vec![tiny_spec("a", 1, 600_000), tiny_spec("b", 2, 600_000)],
            },
            1,
        );
        let json = report.to_json();
        let runs = parse_artifact_runs(&json);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "a");
        assert_eq!(runs[0].trace_digest, report.records[0].trace_digest);
        assert!(runs[0].events_per_sec > 0.0);
        let table = compare_artifacts(&json, &json).unwrap();
        assert!(table.contains("1.00x"), "{table}");
    }

    #[test]
    fn compare_aggregate_row_summarizes_matched_runs() {
        // Hand-written schema-4 fixtures with round numbers so the
        // aggregate arithmetic is checkable by eye: both sides carry
        // 2 000 events per run (ev/s × wall agrees), run 'a' speeds up
        // 2×, run 'b' not at all.
        let artifact = |a_evs: f64, a_wall: f64, b_evs: f64, b_wall: f64| {
            format!(
                "{{\n\"schema_version\": {SCHEMA_VERSION},\n\
                 \"label\": \"a\",\n\
                 \"trace_digest\": \"aaaaaaaaaaaaaaaa\",\n\
                 \"events_per_sec\": {a_evs},\n\
                 \"wall_ms\": {a_wall},\n\
                 \"label\": \"b\",\n\
                 \"trace_digest\": \"bbbbbbbbbbbbbbbb\",\n\
                 \"events_per_sec\": {b_evs},\n\
                 \"wall_ms\": {b_wall}\n}}\n"
            )
        };
        let baseline = artifact(1000.0, 2000.0, 4000.0, 500.0);
        let candidate = artifact(2000.0, 1000.0, 4000.0, 500.0);
        let table = compare_artifacts(&baseline, &candidate).unwrap();
        let aggregate = table
            .lines()
            .find(|l| l.starts_with("aggregate"))
            .expect("aggregate row");
        // Totals: 4 000 events over 2.5 s vs over 1.5 s; the summary
        // speedup is the geometric mean √(2.0 × 1.0) ≈ 1.41, not the
        // arithmetic mean 1.5.
        assert!(aggregate.contains("1600"), "{aggregate}");
        assert!(aggregate.contains("2667"), "{aggregate}");
        assert!(aggregate.contains("1.41x"), "{aggregate}");
        assert!(aggregate.contains("geometric mean"), "{aggregate}");
    }

    #[test]
    fn cross_schema_compare_is_refused() {
        let report = run_sweep(
            &Sweep {
                name: "old".into(),
                runs: vec![tiny_spec("a", 1, 600_000)],
            },
            1,
        );
        let current = report.to_json();
        assert_eq!(artifact_schema_version(&current).unwrap(), SCHEMA_VERSION);
        let stale = current.replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 3",
        );
        let errs = compare_artifacts(&stale, &current).unwrap_err();
        assert!(errs[0].contains("schema_version 3"), "{errs:?}");
        assert!(errs[0].contains("regenerate"), "{errs:?}");
        let errs = check_artifact_schema("{}", "thing").unwrap_err();
        assert!(errs.contains("no schema_version"), "{errs}");
    }

    #[test]
    fn compare_catches_digest_divergence_and_missing_runs() {
        let a = run_sweep(
            &Sweep {
                name: "x".into(),
                runs: vec![tiny_spec("a", 1, 600_000), tiny_spec("b", 2, 600_000)],
            },
            1,
        );
        let b = run_sweep(
            &Sweep {
                name: "x".into(),
                // A 1 ms horizon truncates 'a' → different digest;
                // 'b' absent, 'c' extra.
                runs: vec![tiny_spec("a", 1, 1), tiny_spec("c", 3, 600_000)],
            },
            1,
        );
        let errs = compare_artifacts(&a.to_json(), &b.to_json()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("digest")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("'b' is missing")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("'c' is missing")),
            "{errs:?}"
        );
    }

    #[test]
    fn cross_scheduler_compare_is_refused() {
        let mut spec = tiny_spec("a", 1, 600_000);
        let baseline = run_sweep(
            &Sweep {
                name: "sch".into(),
                runs: vec![spec.clone()],
            },
            1,
        );
        assert!(baseline.to_json().contains("\"scheduler\": \"rr\""));
        spec.job
            .override_scheduler(suprenum::SchedulerKind::Preemptive {
                quantum: des::time::SimDuration::from_millis(5),
            });
        let candidate = run_sweep(
            &Sweep {
                name: "sch".into(),
                runs: vec![spec],
            },
            1,
        );
        assert_eq!(candidate.records[0].scheduler, "preempt:5000");
        let errs = compare_artifacts(&baseline.to_json(), &candidate.to_json()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("cross-scheduler")),
            "{errs:?}"
        );
        // Legacy artifacts (no scheduler field) read back as round-robin
        // and stay comparable against fresh rr artifacts.
        let legacy: String = baseline
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"scheduler\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(parse_artifact_runs(&legacy)[0].scheduler, "rr");
        assert!(compare_artifacts(&legacy, &baseline.to_json()).is_ok());
    }

    #[test]
    fn same_seed_same_fingerprint_and_digest() {
        let a = execute(&tiny_spec("x", 42, 600_000));
        let b = execute(&tiny_spec("x", 42, 600_000));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.trace_digest, b.trace_digest);
        let c = execute(&tiny_spec("x", 43, 600_000));
        assert_ne!(a.fingerprint, c.fingerprint);
    }
}
