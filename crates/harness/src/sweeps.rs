//! The named sweeps the `harness` binary can run.
//!
//! Each builder returns a [`Sweep`] reproducing one of the paper's
//! evaluation campaigns: the Figure 10 version ladder, the bundle-size
//! and window-credit ablations, a multi-seed stability check, a small
//! smoke sweep for CI — plus the SPMD Jacobi sweep, the second stock
//! workload through the same measurement pipeline.

use des::time::SimTime;
use pipeline::jacobi::JacobiConfig;
use pipeline::{Job, PipelineConfig};
use raysim::config::{AppConfig, SceneKind, Version};

use crate::{RunSpec, Sweep};

/// Workload size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The calibrated sizes behind the recorded numbers.
    #[default]
    Paper,
    /// Shrunk workloads for fast test runs.
    Quick,
}

impl Scale {
    /// Picks the image edge for this scale.
    pub fn image(self, full: u32, quick: u32) -> u32 {
        match self {
            Scale::Paper => full,
            Scale::Quick => quick,
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }
}

/// The standard experiment run configuration: generous simulated-time
/// budget, warn-but-run pre-flight analysis (version 3's bug must
/// execute to be measured).
fn experiment_config(app: AppConfig, seed: u64) -> PipelineConfig<AppConfig> {
    let mut cfg = PipelineConfig::new(app);
    cfg.seed = seed;
    cfg.horizon = SimTime::from_secs(36_000);
    cfg.preflight = analyzer::pipeline_warn();
    cfg
}

/// A ray-tracer spec: the app under the standard experiment
/// configuration, frozen into a type-erased job.
fn ray_spec(
    label: String,
    app: AppConfig,
    seed: u64,
    version: Option<Version>,
    paper_percent: Option<f64>,
) -> RunSpec {
    RunSpec {
        label,
        job: Job::new(experiment_config(app.clone(), seed)),
        version,
        app: Some(app),
        paper_percent,
        faults: None,
    }
}

/// The application of `version` at `scale`, exactly as
/// `experiments::fig10_versions` configures it: quick mode shrinks
/// bundles while preserving each version's distinguishing relations
/// (V3's queue constant stays inadequate, V4's bundle stays largest).
fn fig10_app(version: Version, scale: Scale) -> AppConfig {
    let mut app = AppConfig::version(version);
    app.width = scale.image(128, 48);
    app.height = app.width;
    if scale == Scale::Quick {
        match version {
            Version::V1 | Version::V2 => {
                app.pixel_queue_capacity = 256;
                app.write_chunk = 4;
            }
            Version::V3 => {
                app.bundle_size = 8;
                app.pixel_queue_capacity = 128;
                app.write_chunk = 8;
            }
            Version::V4 => {
                app.bundle_size = 16;
                app.pixel_queue_capacity = 2_048;
                app.write_chunk = 16;
            }
        }
    }
    app
}

/// F10 — the version ladder V1–V4 (paper: 15 % / 29 % / 46 % / 60 %).
pub fn fig10(scale: Scale, seed: u64) -> Sweep {
    let runs = Version::ALL
        .iter()
        .map(|&v| {
            ray_spec(
                format!("V{}", v as u8 + 1),
                fig10_app(v, scale),
                seed,
                Some(v),
                Some(v.paper_utilization_percent()),
            )
        })
        .collect();
    Sweep {
        name: "fig10".into(),
        runs,
    }
}

/// Bundle-size ablation on version 4 — why the paper moved from
/// single-ray jobs to bundles of 50 and then 100.
pub fn bundle(scale: Scale, seed: u64) -> Sweep {
    let bundles: &[u32] = match scale {
        Scale::Paper => &[1, 5, 10, 25, 50, 100, 200],
        Scale::Quick => &[1, 10, 50],
    };
    let runs = bundles
        .iter()
        .map(|&bundle| {
            let mut app = AppConfig::version(Version::V4);
            app.width = scale.image(96, 32);
            app.height = app.width;
            app.bundle_size = bundle;
            app.pixel_queue_capacity = 16_384;
            app.write_chunk = bundle.max(4);
            ray_spec(
                format!("bundle-{bundle}"),
                app,
                seed,
                Some(Version::V4),
                None,
            )
        })
        .collect();
    Sweep {
        name: "bundle".into(),
        runs,
    }
}

/// Window-flow-control credit ablation on version 3 — the scheme
/// "prevents flooding of the servants … but also ensures that the
/// servants always have enough work".
pub fn window(scale: Scale, seed: u64) -> Sweep {
    let windows: &[u32] = match scale {
        Scale::Paper => &[1, 2, 3, 5, 8],
        Scale::Quick => &[1, 3, 8],
    };
    let runs = windows
        .iter()
        .map(|&w| {
            let mut app = AppConfig::version(Version::V3);
            app.width = scale.image(96, 32);
            app.height = app.width;
            app.window = w;
            if scale == Scale::Quick {
                app.bundle_size = 8;
                app.pixel_queue_capacity = 128;
                app.write_chunk = 8;
            }
            ray_spec(format!("window-{w}"), app, seed, Some(Version::V3), None)
        })
        .collect();
    Sweep {
        name: "window".into(),
        runs,
    }
}

/// Multi-seed stability check: the version-4 measurement across several
/// seeds. Utilization should move only within a narrow band — the
/// result is a property of the program structure, not of scheduling
/// accidents.
pub fn seeds(scale: Scale, base_seed: u64) -> Sweep {
    let runs = (0..5)
        .map(|i| {
            let seed = base_seed + i;
            ray_spec(
                format!("seed-{seed}"),
                fig10_app(Version::V4, scale),
                seed,
                Some(Version::V4),
                Some(Version::V4.paper_utilization_percent()),
            )
        })
        .collect();
    Sweep {
        name: "seeds".into(),
        runs,
    }
}

/// A small, fast sweep for CI: the four versions on a tiny image plus a
/// two-seed determinism pair. Completes in seconds; its digests are the
/// golden determinism reference.
pub fn smoke(seed: u64) -> Sweep {
    let mut runs: Vec<RunSpec> = Version::ALL
        .iter()
        .map(|&v| {
            let mut app = fig10_app(v, Scale::Quick);
            app.servants = 4;
            app.scene = SceneKind::Quickstart;
            app.width = 16;
            app.height = 16;
            ray_spec(format!("smoke-V{}", v as u8 + 1), app, seed, Some(v), None)
        })
        .collect();
    for s in [seed + 100, seed + 101] {
        let mut app = fig10_app(Version::V4, Scale::Quick);
        app.servants = 4;
        app.scene = SceneKind::Quickstart;
        app.width = 16;
        app.height = 16;
        runs.push(ray_spec(
            format!("smoke-seed-{s}"),
            app,
            s,
            Some(Version::V4),
            None,
        ));
    }
    Sweep {
        name: "smoke".into(),
        runs,
    }
}

/// The SPMD Jacobi sweep — the second stock workload through the same
/// pipeline: a worker-count ladder at fixed per-worker strip size, so
/// the BSP exchange/compute alternation is measured exactly like the
/// ray tracer's master/servant cycles. Its digests are the Jacobi
/// determinism golden (`tests/golden/jacobi_digests.txt`).
pub fn jacobi(scale: Scale, seed: u64) -> Sweep {
    let (cells_per_worker, iterations) = match scale {
        Scale::Paper => (64, 30),
        Scale::Quick => (16, 10),
    };
    let runs = [2u16, 4, 8]
        .iter()
        .map(|&workers| {
            let mut cfg = PipelineConfig::new(JacobiConfig {
                workers,
                cells_per_worker,
                iterations,
                ..JacobiConfig::default()
            });
            cfg.seed = seed;
            cfg.horizon = SimTime::from_secs(36_000);
            cfg.preflight = analyzer::workload_warn();
            RunSpec {
                label: format!("jacobi-w{workers}"),
                job: Job::new(cfg),
                version: None,
                app: None,
                paper_percent: None,
                faults: None,
            }
        })
        .collect();
    Sweep {
        name: "jacobi".into(),
        runs,
    }
}

/// Processor-count scaling over the torus — the former bespoke
/// `ablation_scaling` binary migrated onto the sweep/digest
/// infrastructure, so multi-cluster shapes get the same truncation and
/// determinism gates as fig10/jacobi. Two ladders at 16, 32, and 64
/// nodes (1, 2, and 4 clusters):
///
/// * the centralized V4 ray tracer, whose master is the paper's
///   "hot-spot for communication" — utilization collapses as the ladder
///   climbs;
/// * the SPMD Jacobi solver, whose BSP exchange keeps every cluster
///   busy — the shape where the per-cluster parallel engine pays.
pub fn scaling(scale: Scale, seed: u64) -> Sweep {
    let mut runs: Vec<RunSpec> = Vec::new();
    for &servants in &[1u16, 3, 7, 15, 31, 63] {
        let mut app = AppConfig::version(Version::V4);
        app.servants = servants;
        app.width = scale.image(96, 32);
        app.height = app.width;
        match scale {
            Scale::Paper => {
                app.bundle_size = 32;
                app.write_chunk = 64;
            }
            Scale::Quick => {
                app.bundle_size = 8;
                app.pixel_queue_capacity = 2_048;
                app.write_chunk = 8;
            }
        }
        let mut cfg = experiment_config(app.clone(), seed);
        // The 64-node rung needs more simulated time than the standard
        // experiment budget: the master administers every ray.
        cfg.horizon = SimTime::from_secs(360_000);
        runs.push(RunSpec {
            label: format!("ray-n{}", servants + 1),
            job: Job::new(cfg),
            version: Some(Version::V4),
            app: Some(app),
            paper_percent: None,
            faults: None,
        });
    }
    let (cells_per_worker, iterations) = match scale {
        Scale::Paper => (48, 40),
        Scale::Quick => (8, 6),
    };
    for &workers in &[15u16, 31, 63] {
        let mut cfg = PipelineConfig::new(JacobiConfig {
            workers,
            cells_per_worker,
            iterations,
            ..JacobiConfig::default()
        });
        cfg.seed = seed;
        cfg.horizon = SimTime::from_secs(360_000);
        cfg.preflight = analyzer::workload_warn();
        runs.push(RunSpec {
            label: format!("jacobi-n{}", workers + 1),
            job: Job::new(cfg),
            version: None,
            app: None,
            paper_percent: None,
            faults: None,
        });
    }
    Sweep {
        name: "scaling".into(),
        runs,
    }
}

/// The application of `version` for the scheduling study: the fig10
/// ladder with kernel instrumentation enabled, shrunk to the smoke
/// shape in quick mode (the study contrasts *policies*, not scene
/// sizes, so quick rows only need enough scheduling activity to
/// exercise each policy).
fn sched_app(version: Version, scale: Scale) -> AppConfig {
    let mut app = fig10_app(version, scale);
    if scale == Scale::Quick {
        app.servants = 4;
        app.scene = SceneKind::Quickstart;
        app.width = 16;
        app.height = 16;
    }
    app.kernel_events = true;
    app
}

/// The scheduling study: the fig10 version ladder and the Figure 7
/// two-processor mailbox-synchrony measurement, re-run under every
/// kernel scheduling policy — non-preemptive round-robin (the paper's
/// machine), preemptive fixed-priority, CFS-style fair queuing, and the
/// seeded fuzz wrapper — plus a fault-injection dimension perturbing
/// the probe plane itself. Every row records kernel events, so
/// `harness verify` can reconcile the analyzer's static
/// preemptive-divergence verdict against what each trace actually
/// shows: preemption tokens must appear under the preemptive policies
/// and must *not* under round-robin.
pub fn sched(scale: Scale, seed: u64) -> Sweep {
    use suprenum::sched::DEFAULT_QUANTUM;
    use suprenum::SchedulerKind;

    let policies: [(&str, SchedulerKind); 4] = [
        ("rr", SchedulerKind::RoundRobin),
        (
            "preempt",
            SchedulerKind::Preemptive {
                quantum: DEFAULT_QUANTUM,
            },
        ),
        (
            "cfs",
            SchedulerKind::Cfs {
                quantum: DEFAULT_QUANTUM,
            },
        ),
        (
            "fuzz",
            SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::RoundRobin),
                seed,
            },
        ),
    ];

    let mut runs: Vec<RunSpec> = Vec::new();
    for (tag, kind) in &policies {
        for &v in Version::ALL.iter() {
            let app = sched_app(v, scale);
            let mut cfg = experiment_config(app.clone(), seed);
            cfg.machine.scheduler = kind.clone();
            runs.push(RunSpec {
                label: format!("{tag}-V{}", v as u8 + 1),
                job: Job::new(cfg),
                version: Some(v),
                app: Some(app),
                paper_percent: None,
                faults: None,
            });
        }
        // The mailbox-synchrony measurement (Figure 7's two-processor
        // shape): the smallest configuration where mailbox LWPs contend
        // with user computation for the CPU — the scheduling decision
        // the paper's kernel resolves by strict mailbox priority.
        let mut app = AppConfig::two_processor();
        if scale == Scale::Quick {
            app.scene = SceneKind::Quickstart;
            app.width = 16;
            app.height = 16;
        }
        app.kernel_events = true;
        let mut cfg = experiment_config(app.clone(), seed);
        cfg.machine.scheduler = kind.clone();
        runs.push(RunSpec {
            label: format!("{tag}-mailbox"),
            job: Job::new(cfg),
            version: Some(Version::V1),
            app: Some(app),
            paper_percent: None,
            faults: None,
        });
    }

    // The fault-injection dimension: the V4 rung re-measured with a
    // perturbed probe plane (dropped writes, corrupted patterns,
    // drifting recorder clocks) under round-robin and under the fuzz
    // scheduler. Deterministic per seed — two sweeps at equal seeds
    // produce bit-identical faulted digests at any worker count.
    let faults = pipeline::FaultConfig {
        probe_drop_permille: 40,
        probe_corrupt_permille: 20,
        clock_drift_ppm: 1_500,
        seed,
    };
    for (tag, kind) in [
        ("faults", SchedulerKind::RoundRobin),
        (
            "fuzz-faults",
            SchedulerKind::Fuzz {
                base: Box::new(SchedulerKind::RoundRobin),
                seed,
            },
        ),
    ] {
        let app = sched_app(Version::V4, scale);
        let mut cfg = experiment_config(app.clone(), seed);
        cfg.machine.scheduler = kind;
        cfg.faults = faults;
        runs.push(RunSpec {
            label: format!("{tag}-V4"),
            job: Job::new(cfg),
            version: Some(Version::V4),
            app: Some(app),
            paper_percent: None,
            faults: Some(faults),
        });
    }

    Sweep {
        name: "sched".into(),
        runs,
    }
}

/// The names [`by_name`] understands, for `harness list` and usage
/// messages.
pub const NAMES: [&str; 8] = [
    "fig10", "bundle", "window", "seeds", "smoke", "jacobi", "scaling", "sched",
];

/// Resolves a sweep by CLI name.
pub fn by_name(name: &str, scale: Scale, seed: u64) -> Option<Sweep> {
    match name {
        "fig10" => Some(fig10(scale, seed)),
        "bundle" => Some(bundle(scale, seed)),
        "window" => Some(window(scale, seed)),
        "seeds" => Some(seeds(scale, seed)),
        "smoke" => Some(smoke(seed)),
        "jacobi" => Some(jacobi(scale, seed)),
        "scaling" => Some(scaling(scale, seed)),
        "sched" => Some(sched(scale, seed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves() {
        for name in NAMES {
            let sweep = by_name(name, Scale::Quick, 1).expect(name);
            assert_eq!(sweep.name, name);
            assert!(!sweep.runs.is_empty());
        }
        assert!(by_name("nope", Scale::Quick, 1).is_none());
    }

    #[test]
    fn fig10_covers_the_ladder() {
        let sweep = fig10(Scale::Quick, 1992);
        let labels: Vec<&str> = sweep.runs.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["V1", "V2", "V3", "V4"]);
        assert!(sweep
            .runs
            .iter()
            .all(|r| r.paper_percent.is_some() && r.job.workload_id() == "raytracer"));
    }

    #[test]
    fn jacobi_sweep_walks_the_worker_ladder() {
        let sweep = jacobi(Scale::Quick, 1992);
        let labels: Vec<&str> = sweep.runs.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["jacobi-w2", "jacobi-w4", "jacobi-w8"]);
        assert!(sweep.runs.iter().all(|r| r.job.workload_id() == "jacobi"));
        // Each rung is a distinct configuration.
        let mut prints: Vec<String> = sweep.runs.iter().map(|r| r.job.fingerprint()).collect();
        prints.dedup();
        assert_eq!(prints.len(), 3);
    }

    #[test]
    fn scaling_sweep_spans_single_and_multi_cluster_shapes() {
        let sweep = scaling(Scale::Quick, 1992);
        let labels: Vec<&str> = sweep.runs.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "ray-n2",
                "ray-n4",
                "ray-n8",
                "ray-n16",
                "ray-n32",
                "ray-n64",
                "jacobi-n16",
                "jacobi-n32",
                "jacobi-n64"
            ]
        );
        // Each rung is a distinct configuration.
        let mut prints: Vec<String> = sweep.runs.iter().map(|r| r.job.fingerprint()).collect();
        prints.sort();
        prints.dedup();
        assert_eq!(prints.len(), 9);
    }

    #[test]
    fn sched_sweep_covers_every_policy_and_the_fault_dimension() {
        let sweep = sched(Scale::Quick, 1992);
        let labels: Vec<&str> = sweep.runs.iter().map(|r| r.label.as_str()).collect();
        // 4 policies × (4 versions + mailbox) + 2 fault rows.
        assert_eq!(sweep.runs.len(), 22);
        for tag in ["rr", "preempt", "cfs", "fuzz"] {
            for row in ["V1", "V2", "V3", "V4", "mailbox"] {
                assert!(
                    labels.contains(&format!("{tag}-{row}").as_str()),
                    "missing {tag}-{row} in {labels:?}"
                );
            }
        }
        assert!(labels.contains(&"faults-V4"));
        assert!(labels.contains(&"fuzz-faults-V4"));
        // Fault rows carry their injection for `harness verify` to see;
        // policy rows do not.
        assert_eq!(sweep.runs.iter().filter(|r| r.faults.is_some()).count(), 2);
        // Every row keeps its application shape (all are ray runs) and
        // every configuration is distinct.
        assert!(sweep.runs.iter().all(|r| r.app.is_some()));
        assert!(sweep
            .runs
            .iter()
            .all(|r| r.app.as_ref().is_some_and(|a| a.kernel_events)));
        let mut prints: Vec<String> = sweep.runs.iter().map(|r| r.job.fingerprint()).collect();
        prints.sort();
        prints.dedup();
        assert_eq!(prints.len(), 22, "fingerprints must distinguish rows");
    }

    #[test]
    fn quick_fig10_preserves_the_v3_bug() {
        let v3 = fig10_app(Version::V3, Scale::Quick);
        let demand = v3.servants as u32 * v3.window * v3.bundle_size;
        assert!(v3.pixel_queue_capacity < demand);
        let v4 = fig10_app(Version::V4, Scale::Quick);
        assert!(v4.bundle_size > v3.bundle_size);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("big"), None);
    }
}
