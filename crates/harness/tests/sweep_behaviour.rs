//! End-to-end behaviour of the sweep harness: truncation reporting and
//! worker-count determinism.

use des::time::SimTime;
use harness::{execute, run_sweep, sweeps, RunSpec, Sweep};
use pipeline::{Job, PipelineConfig};
use proptest::prelude::*;
use raysim::config::{AppConfig, SceneKind, Version};
use suprenum::RunEnd;

fn tiny_spec(label: &str, seed: u64, horizon: SimTime) -> RunSpec {
    let mut app = AppConfig::version(Version::V4);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 12;
    app.height = 12;
    app.bundle_size = 6;
    app.pixel_queue_capacity = 128;
    app.write_chunk = 6;
    let mut cfg = PipelineConfig::new(app.clone());
    cfg.seed = seed;
    cfg.horizon = horizon;
    RunSpec {
        label: label.to_owned(),
        job: Job::new(cfg),
        version: Some(Version::V4),
        app: Some(app),
        paper_percent: None,
        faults: None,
    }
}

/// Satellite: a deliberately truncated run (tiny horizon) must be
/// reported as truncated end to end — in the record, the JSON artifact,
/// the rendered table, and the process exit code.
#[test]
fn truncation_is_reported_end_to_end() {
    let sweep = Sweep {
        name: "horizon-cut".into(),
        runs: vec![
            tiny_spec("full", 7, SimTime::from_secs(600)),
            tiny_spec("cut", 7, SimTime::from_millis(200)),
        ],
    };
    let report = run_sweep(&sweep, 2);

    let full = &report.records[0];
    assert_eq!(full.run_end, RunEnd::Completed);
    assert!(!full.truncated);
    assert!(full.utilization_percent.is_some());

    let cut = &report.records[1];
    assert_eq!(cut.run_end, RunEnd::Horizon);
    assert!(cut.truncated);
    assert_eq!(
        cut.utilization_percent, None,
        "a truncated run must not report utilization as if it were valid"
    );
    assert!(cut.events_processed > 0);
    assert!(cut.sim_end_ns <= 200_000_000);

    let json = report.to_json();
    assert!(json.contains("\"run_end\": \"horizon\""));
    assert!(json.contains("\"truncated\": true"));
    assert!(json.contains("\"all_completed\": false"));
    assert!(report.render_table().contains("TRUNCATED"));
    assert_eq!(report.exit_code(), 2);
}

/// The smoke sweep — CI's golden reference — completes at quick scale
/// and yields a digest per run.
#[test]
fn smoke_sweep_completes_with_digests() {
    let sweep = sweeps::smoke(1992);
    let report = run_sweep(&sweep, 2);
    assert_eq!(report.exit_code(), 0);
    assert_eq!(report.records.len(), sweep.runs.len());
    for rec in &report.records {
        assert!(!rec.truncated, "{} truncated", rec.label);
        assert_eq!(rec.trace_digest.len(), 16);
    }
    let lines = report.digest_lines();
    assert_eq!(lines.lines().count(), sweep.runs.len());
    assert!(report.check_digests(&lines).is_ok());
}

/// A record's digest must equal the digest of the same spec executed
/// directly on the calling thread — pooling changes scheduling of host
/// threads, never simulated behaviour.
#[test]
fn pooled_and_direct_execution_agree() {
    let spec = tiny_spec("direct", 23, SimTime::from_secs(600));
    let direct = execute(&spec);
    let report = run_sweep(
        &Sweep {
            name: "one".into(),
            runs: vec![spec],
        },
        3,
    );
    assert_eq!(report.records[0].trace_digest, direct.trace_digest);
    assert_eq!(report.records[0].fingerprint, direct.fingerprint);
    assert_eq!(report.records[0].events_processed, direct.events_processed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: results are bit-identical regardless of worker count.
    /// Any sweep of up to 5 runs with arbitrary seeds digests the same
    /// under 1 worker and under N.
    #[test]
    fn worker_count_never_changes_results(
        seeds in proptest::collection::vec(0u64..10_000, 1..5),
        workers in 2usize..6,
    ) {
        let sweep = Sweep {
            name: "prop".into(),
            runs: seeds
                .iter()
                .enumerate()
                .map(|(i, &s)| tiny_spec(&format!("r{i}"), s, SimTime::from_secs(600)))
                .collect(),
        };
        let serial = run_sweep(&sweep, 1);
        let pooled = run_sweep(&sweep, workers);
        for (a, b) in serial.records.iter().zip(pooled.records.iter()) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.trace_digest, &b.trace_digest);
            prop_assert_eq!(&a.fingerprint, &b.fingerprint);
            prop_assert_eq!(a.events_processed, b.events_processed);
            prop_assert_eq!(a.sim_end_ns, b.sim_end_ns);
            prop_assert_eq!(a.run_end, b.run_end);
        }
    }
}
