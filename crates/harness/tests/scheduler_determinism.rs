//! Satellite: the scheduler extraction is behaviour-preserving, and
//! seeded scheduling fuzz is deterministic.
//!
//! Two properties guard the refactor. First, round-robin is the
//! pre-refactor semantics: explicitly overriding a job to `rr` must be
//! a bit-identical no-op against the default, across every worker
//! count, monitor-shard count, and engine-shard packing — the digests
//! are the same ones the golden files pin. Second, `fuzz:<base>:<seed>`
//! must be a pure function of the seed: the same seed reproduces the
//! same digest regardless of how the harness parallelises the runs,
//! because the perturbation draws from the scheduler's own derived RNG
//! stream, never from wall-clock or thread identity.

use harness::{execute, run_sweep, RunSpec, Sweep};
use pipeline::jacobi::JacobiConfig;
use pipeline::{Job, PipelineConfig};
use proptest::prelude::*;
use raysim::config::{AppConfig, SceneKind, Version};
use suprenum::SchedulerKind;

/// A small instrumented ray run: kernel events on, so the digest is
/// sensitive to every dispatch decision the policy makes.
fn ray_spec(shards: usize) -> RunSpec {
    let mut app = AppConfig::version(Version::V4);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 12;
    app.height = 12;
    app.bundle_size = 16;
    app.pixel_queue_capacity = 2_048;
    app.write_chunk = 16;
    app.kernel_events = true;
    let mut cfg = PipelineConfig::new(app.clone());
    cfg.seed = 1992;
    cfg.shards = shards;
    RunSpec {
        label: format!("V4-s{shards}"),
        job: Job::new(cfg),
        version: Some(Version::V4),
        app: Some(app),
        paper_percent: None,
        faults: None,
    }
}

/// A two-cluster Jacobi run, so the parallel engine path is covered.
fn jacobi_spec(shards: usize) -> RunSpec {
    let mut cfg = PipelineConfig::new(JacobiConfig {
        workers: 18,
        cells_per_worker: 8,
        iterations: 3,
        ..JacobiConfig::default()
    });
    cfg.seed = 1992;
    cfg.shards = shards;
    RunSpec {
        label: format!("jacobi-s{shards}"),
        job: Job::new(cfg),
        version: None,
        app: None,
        paper_percent: None,
        faults: None,
    }
}

fn spec(workload: usize, shards: usize) -> RunSpec {
    if workload == 0 {
        ray_spec(shards)
    } else {
        jacobi_spec(shards)
    }
}

/// Directed: an explicit `rr` override is the identity — digests match
/// the default-scheduled oracle bit for bit on both stock shapes.
#[test]
fn explicit_round_robin_override_is_a_digest_noop() {
    for workload in 0..2 {
        let oracle = execute(&spec(workload, 1));
        assert!(!oracle.truncated, "{} truncated", oracle.label);
        assert_eq!(oracle.scheduler, "rr", "default policy must be rr");
        let mut overridden = spec(workload, 1);
        overridden.job.override_scheduler(SchedulerKind::RoundRobin);
        let run = execute(&overridden);
        assert_eq!(
            oracle.trace_digest, run.trace_digest,
            "{}: overriding rr changed the digest — the extraction is not \
             behaviour-preserving",
            oracle.label
        );
        assert_eq!(oracle.sim_end_ns, run.sim_end_ns);
        assert_eq!(oracle.events_processed, run.events_processed);
        assert_eq!(oracle.trace_events, run.trace_events);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// RR digests are bit-identical across worker counts × monitor
    /// shards × engine shards, with the policy explicitly pinned.
    #[test]
    fn round_robin_digests_survive_any_parallelisation(
        workload in 0usize..2,
        engine_shards in 1usize..=4,
        shards in 1usize..=4,
        workers in 1usize..4,
    ) {
        let oracle = execute(&spec(workload, 1));
        let mut run_spec = spec(workload, shards);
        run_spec.job.override_scheduler(SchedulerKind::RoundRobin);
        run_spec.job.override_engine_shards(engine_shards);
        let sweep = Sweep {
            name: "sched-rr-prop".into(),
            runs: vec![run_spec],
        };
        let report = run_sweep(&sweep, workers);
        let run = &report.records[0];
        prop_assert_eq!(&run.scheduler, "rr");
        prop_assert_eq!(&oracle.trace_digest, &run.trace_digest);
        prop_assert_eq!(oracle.sim_end_ns, run.sim_end_ns);
        prop_assert_eq!(oracle.run_end, run.run_end);
    }

    /// Fuzzed scheduling is a pure function of the seed: for any base
    /// policy and seed, the digest is reproducible across worker
    /// counts and monitor shards.
    #[test]
    fn fuzz_digests_are_reproducible_per_seed(
        workload in 0usize..2,
        base_is_preemptive in any::<bool>(),
        seed in 0u64..1_000,
        shards in 1usize..=3,
        workers in 1usize..4,
    ) {
        let base = if base_is_preemptive {
            SchedulerKind::Preemptive {
                quantum: suprenum::sched::DEFAULT_QUANTUM,
            }
        } else {
            SchedulerKind::RoundRobin
        };
        let kind = SchedulerKind::Fuzz {
            base: Box::new(base),
            seed,
        };

        let mut oracle_spec = spec(workload, 1);
        oracle_spec.job.override_scheduler(kind.clone());
        let oracle = execute(&oracle_spec);

        let mut run_spec = spec(workload, shards);
        run_spec.job.override_scheduler(kind.clone());
        let sweep = Sweep {
            name: "sched-fuzz-prop".into(),
            runs: vec![run_spec],
        };
        let report = run_sweep(&sweep, workers);
        let run = &report.records[0];
        prop_assert_eq!(&run.scheduler, &kind.name());
        prop_assert_eq!(&oracle.trace_digest, &run.trace_digest);
        prop_assert_eq!(oracle.sim_end_ns, run.sim_end_ns);
        prop_assert_eq!(oracle.run_end, run.run_end);
    }
}
