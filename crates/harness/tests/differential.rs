//! Differential gate for the workload-pipeline refactor: sweeps now
//! execute through type-erased `pipeline::Job`s instead of calling
//! `raysim::run` directly, and the committed golden digests were
//! recorded *before* that refactor — so matching them proves the
//! generic pipeline reproduces the legacy path bit for bit (every
//! trace event, the end time, the end reason, and the event count).

use std::collections::HashMap;

use harness::{run_sweep, sweeps, Scale};

/// The smoke sweep through the job queue must reproduce the
/// pre-refactor goldens exactly — labels, digest recipe, and digest
/// values all unchanged.
#[test]
fn smoke_digests_match_the_pre_refactor_goldens() {
    let sweep = sweeps::by_name("smoke", Scale::Quick, 1992).unwrap();
    let report = run_sweep(&sweep, 2);
    assert_eq!(report.exit_code(), 0);
    report
        .check_digests(include_str!("golden/smoke_digests.txt"))
        .unwrap_or_else(|errors| {
            panic!(
                "the generic pipeline diverged from the legacy run path:\n{}",
                errors.join("\n")
            )
        });
}

/// The paper-scale fig10 ladder (128×128, 15 servants) must also
/// reproduce its pre-refactor digests, recorded in the bench baseline
/// goldens. Checked by hand here because `check_digests` rejects golden
/// lines without a matching run, and the bench golden file pools fig10
/// with the smoke sweep.
#[test]
fn fig10_digests_match_the_bench_goldens() {
    let golden: HashMap<&str, &str> = include_str!("golden/bench_digests.txt")
        .lines()
        .filter_map(|l| l.split_once(' '))
        .collect();
    let sweep = sweeps::by_name("fig10", Scale::Paper, 1992).unwrap();
    let report = run_sweep(&sweep, 2);
    assert_eq!(report.exit_code(), 0);
    for rec in &report.records {
        assert_eq!(
            golden.get(rec.label.as_str()),
            Some(&rec.trace_digest.as_str()),
            "run '{}' diverged from its pre-refactor digest",
            rec.label
        );
    }
}

/// The Jacobi sweep — the second workload through the same pipeline —
/// gets the same determinism treatment: committed goldens, checked on
/// every run.
#[test]
fn jacobi_digests_match_the_committed_goldens() {
    let sweep = sweeps::by_name("jacobi", Scale::Quick, 1992).unwrap();
    let report = run_sweep(&sweep, 2);
    assert_eq!(report.exit_code(), 0);
    report
        .check_digests(include_str!("golden/jacobi_digests.txt"))
        .unwrap_or_else(|errors| panic!("jacobi sweep digests drifted:\n{}", errors.join("\n")));
}

/// The scaling sweep — 16/32/64-node ladders spanning one to four
/// clusters — is the differential oracle for the parallel per-cluster
/// engine: the committed goldens were recorded sequentially
/// (`engine_shards = 1`), and the sweep must reproduce them with the
/// engine threaded across workers.
#[test]
fn scaling_digests_match_the_sequential_goldens_when_threaded() {
    let mut sweep = sweeps::by_name("scaling", Scale::Quick, 1992).unwrap();
    for spec in &mut sweep.runs {
        spec.job.override_engine_shards(2);
    }
    let report = run_sweep(&sweep, 2);
    assert_eq!(report.exit_code(), 0);
    report
        .check_digests(include_str!("golden/scaling_digests.txt"))
        .unwrap_or_else(|errors| {
            panic!(
                "threaded engine diverged from the sequential goldens:\n{}",
                errors.join("\n")
            )
        });
}
