//! Satellite: monitor-plane sharding and engine-thread packing are
//! behaviourally invisible.
//!
//! For every stock workload shape — the four ray-tracer versions, the
//! SPMD Jacobi solver, and a two-cluster Jacobi shape that exercises
//! the parallel per-cluster engine — the per-run trace digest must be
//! bit-identical whether the ZM4 observers run inline with the kernel
//! (one shard, the sequential oracle) or split across N shards
//! overlapped with it, whether the engine shards run on the calling
//! thread or on K worker threads, and regardless of how many harness
//! worker threads host the runs. A digest divergence here means the
//! sharded monitor plane or the threaded engine changed simulated
//! behaviour — exactly what the conservative-lookahead windows exist
//! to prevent.

use harness::{execute, run_sweep, RunSpec, Sweep};
use pipeline::jacobi::JacobiConfig;
use pipeline::{Job, PipelineConfig};
use proptest::prelude::*;
use raysim::config::{AppConfig, SceneKind, Version};

/// A small but complete run of one ray-tracer version: quickstart
/// scene, three servants, per-version queue/bundle shape kept valid.
fn ray_spec(version: Version, shards: usize) -> RunSpec {
    let mut app = AppConfig::version(version);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 12;
    app.height = 12;
    match version {
        Version::V1 | Version::V2 => {
            app.pixel_queue_capacity = 256;
            app.write_chunk = 4;
        }
        Version::V3 => {
            app.bundle_size = 8;
            app.pixel_queue_capacity = 128;
            app.write_chunk = 8;
        }
        Version::V4 => {
            app.bundle_size = 16;
            app.pixel_queue_capacity = 2_048;
            app.write_chunk = 16;
        }
    }
    let mut cfg = PipelineConfig::new(app.clone());
    cfg.seed = 1992;
    cfg.shards = shards;
    RunSpec {
        label: format!("V{}-s{shards}", version as u8 + 1),
        job: Job::new(cfg),
        version: Some(version),
        app: Some(app),
        paper_percent: None,
        faults: None,
    }
}

/// A small but complete Jacobi run. 18 workers spans two clusters, so
/// the cross-shard ring traffic of the parallel engine is exercised.
fn jacobi_spec(workers: u16, shards: usize) -> RunSpec {
    let mut cfg = PipelineConfig::new(JacobiConfig {
        workers,
        cells_per_worker: 8,
        iterations: if workers > 8 { 3 } else { 6 },
        ..JacobiConfig::default()
    });
    cfg.seed = 1992;
    cfg.shards = shards;
    RunSpec {
        label: format!("jacobi-w{workers}-s{shards}"),
        job: Job::new(cfg),
        version: None,
        app: None,
        paper_percent: None,
        faults: None,
    }
}

/// The six stock workload shapes at a given shard count: four ray
/// versions, single-cluster Jacobi, two-cluster Jacobi.
fn spec(workload: usize, shards: usize) -> RunSpec {
    match workload {
        0..=3 => ray_spec(Version::ALL[workload], shards),
        4 => jacobi_spec(4, shards),
        _ => jacobi_spec(18, shards),
    }
}

/// Directed sweep of the whole matrix: every stock shape, shards 1..=4,
/// every digest identical to the one-shard oracle's.
#[test]
fn all_stock_shapes_digest_identically_across_shard_counts() {
    for workload in 0..6 {
        let oracle = execute(&spec(workload, 1));
        assert!(!oracle.truncated, "{} truncated", oracle.label);
        for shards in 2..=4 {
            let sharded = execute(&spec(workload, shards));
            assert_eq!(sharded.shards, shards);
            assert_eq!(
                oracle.trace_digest, sharded.trace_digest,
                "workload {} diverged at {shards} shards",
                oracle.label
            );
            assert_eq!(oracle.sim_end_ns, sharded.sim_end_ns);
            assert_eq!(oracle.events_processed, sharded.events_processed);
            assert_eq!(oracle.trace_events, sharded.trace_events);
            assert_eq!(oracle.work_units, sharded.work_units);
        }
    }
}

/// Directed: on a multi-cluster shape every engine worker-thread count
/// reproduces the sequential oracle bit for bit, alone and composed
/// with monitor shards.
#[test]
fn engine_thread_packing_never_changes_multi_cluster_digests() {
    let oracle = execute(&spec(5, 1));
    assert!(!oracle.truncated, "{} truncated", oracle.label);
    for engine_shards in [2, 3, 8] {
        for shards in [1, 3] {
            let mut spec = spec(5, shards);
            spec.job.override_engine_shards(engine_shards);
            let threaded = execute(&spec);
            assert_eq!(threaded.engine_shards, engine_shards);
            assert_eq!(
                oracle.trace_digest, threaded.trace_digest,
                "{} diverged at {engine_shards} engine shards, {shards} monitor shards",
                oracle.label
            );
            assert_eq!(oracle.sim_end_ns, threaded.sim_end_ns);
            assert_eq!(oracle.events_processed, threaded.events_processed);
            assert_eq!(oracle.work_units, threaded.work_units);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any (workload, engine-shard count, monitor-shard count, worker
    /// count) tuple digests the same as the serially-executed
    /// single-shard oracle.
    #[test]
    fn shards_and_workers_never_change_digests(
        workload in 0usize..6,
        engine_shards in 1usize..=4,
        shards in 1usize..=5,
        workers in 1usize..4,
    ) {
        let oracle = execute(&spec(workload, 1));
        let mut run_spec = spec(workload, shards);
        run_spec.job.override_engine_shards(engine_shards);
        let sweep = Sweep {
            name: "shard-prop".into(),
            runs: vec![run_spec],
        };
        let report = run_sweep(&sweep, workers);
        let run = &report.records[0];
        prop_assert_eq!(run.engine_shards, engine_shards);
        prop_assert_eq!(&oracle.trace_digest, &run.trace_digest);
        prop_assert_eq!(oracle.sim_end_ns, run.sim_end_ns);
        prop_assert_eq!(oracle.events_processed, run.events_processed);
        prop_assert_eq!(oracle.run_end, run.run_end);
    }
}
