//! The paper's future work, live: "Instrumenting SUPRENUM's operating
//! system to find more detailed information about the behaviour of the
//! node scheduling algorithm and internode communication."
//!
//! Run with: `cargo run --release --example os_gantt`

use suprenum_monitor::experiments::os_instrumentation;

fn main() {
    println!("running the ray tracer with kernel instrumentation enabled...\n");
    let r = os_instrumentation(1992);

    println!(
        "the kernel emitted {} scheduler events through the same display",
        r.kernel_events
    );
    println!("interface as the application — dispatches, blocks, mailbox service, exits.\n");

    println!("per-node CPU busy fraction over the ray-tracing phase:");
    for (name, busy) in &r.node_cpu_busy {
        let bars = (busy * 40.0).round() as usize;
        println!(
            "  {name:<12} |{:<40}| {:5.1}%",
            "#".repeat(bars),
            busy * 100.0
        );
    }
    println!(
        "\nnode 0 (the master) spends {:.1}% of the phase in mailbox service alone —",
        r.master_node_mailbox_fraction * 100.0
    );
    println!("internode communication cost, visible per node for the first time.\n");
    println!("{}", r.gantt_text);
}
