//! The paper's §4.3 tuning story: measure all four program versions and
//! print the Figure 10 utilization ladder.
//!
//! Run with: `cargo run --release --example tuning_study`
//! (add `quick` as an argument for a fast, smaller-image variant)

use suprenum_monitor::experiments::{fig10_versions, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Paper
    };
    println!("measuring versions 1-4 (this runs four full simulations)...\n");
    let rows = fig10_versions(1992, scale);

    println!("Figure 10 — improvement of servant utilization:");
    println!(
        "{:<38} {:>9} {:>9} {:>7}",
        "version", "measured", "steady", "paper"
    );
    for row in &rows {
        println!(
            "{:<38} {:>8.1}% {:>8.1}% {:>6.0}%",
            row.version.to_string(),
            row.measured_percent,
            row.steady_percent,
            row.paper_percent
        );
    }

    println!("\nbar chart (measured):");
    for row in &rows {
        let bars = (row.measured_percent / 2.0).round() as usize;
        println!(
            "  V{} |{:<50}| {:.0}%",
            row.version as u8 + 1,
            "#".repeat(bars),
            row.measured_percent
        );
    }

    let improvement = rows.last().unwrap().measured_percent / rows[0].measured_percent;
    println!(
        "\nmeasurement-driven tuning improved servant utilization {improvement:.1}x \
         (paper: 15% -> 60%, 4.0x)"
    );
}
