//! Monitoring a second application: SPMD Jacobi relaxation.
//!
//! The machine hosted more than ray tracers — reference [2] of the paper
//! solves the neutron diffusion equation on SUPRENUM. This example runs
//! a distributed Jacobi solver under the same hybrid monitoring and
//! shows its compute/exchange stripes in a Gantt chart.
//!
//! Run with: `cargo run --release --example jacobi_spmd`

use suprenum_monitor::apps::jacobi::{run_jacobi, worker_activity_model, JacobiConfig};
use suprenum_monitor::simple::Gantt;

fn main() {
    let cfg = JacobiConfig {
        workers: 6,
        cells_per_worker: 96,
        iterations: 24,
        ..JacobiConfig::default()
    };
    let workers = cfg.workers;
    println!("running {workers}-worker Jacobi relaxation on the simulated SUPRENUM...");
    let r = run_jacobi(cfg, 1992);
    println!(
        "done at simulated t={} — max error vs sequential reference: {:e}",
        r.machine.now(),
        r.max_error
    );
    assert_eq!(r.max_error, 0.0, "distributed result must match exactly");

    let (from, to) = r.trace.span();
    let model = worker_activity_model();
    let tracks: Vec<_> = (1..=workers as usize)
        .map(|w| {
            model.derive_track(
                format!("Worker {w}"),
                r.trace.channel(w).events().iter(),
                to,
            )
        })
        .collect();
    let gantt = Gantt::new(tracks, from, to);
    println!("\n{}", gantt.render_text());
    println!("the BSP stripe pattern: all workers alternate Exchange and Compute in");
    println!("lockstep — a completely different program, the same measurement method.");
}
