//! Render a real image with the parallel ray tracer on the simulated
//! SUPRENUM, and save both the picture and the measurement artifacts.
//!
//! Run with: `cargo run --release --example render_parallel`
//!
//! Writes `render_parallel.ppm` (the image the master assembled from the
//! servants' results) and `render_parallel_gantt.svg` (a Gantt chart of
//! a steady-state window) to the current directory.

use std::fs;

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::{
    master_track, servant_track, servant_tracks, servant_utilization, work_phase,
};
use suprenum_monitor::raysim::config::{AppConfig, SceneKind, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};
use suprenum_monitor::simple::Gantt;
use suprenum_monitor::simple::StateTimeline;

fn main() {
    let mut app = AppConfig::version(Version::V4);
    // `--scene whitted` renders the checkerboard homage instead of the
    // paper's moderate scene.
    let whitted = std::env::args().any(|a| a == "whitted");
    app.scene = if whitted {
        let (scene, _) = suprenum_monitor::raytracer::scenes::whitted_scene();
        let spec = suprenum_monitor::raytracer::sdl::CameraSpec {
            eye: suprenum_monitor::raytracer::Vec3::new(0.0, 0.8, 1.5),
            target: suprenum_monitor::raytracer::Vec3::new(0.0, 0.0, -5.5),
            up: suprenum_monitor::raytracer::Vec3::new(0.0, 1.0, 0.0),
            fov_deg: 52.0,
            aspect: 1.0,
        };
        SceneKind::from_description(suprenum_monitor::raytracer::sdl::serialize(&scene, &spec))
    } else {
        SceneKind::Moderate
    };
    app.width = 96;
    app.height = 96;
    app.bundle_size = 32;
    app.write_chunk = 64;
    let servants = app.servants as u32;

    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    println!(
        "rendering {0}x{0} on 16 simulated processors (version 4)...",
        96
    );
    let result = run(cfg);
    assert!(result.completed(), "run failed: {:?}", result.outcome);

    println!(
        "done at simulated t={} — {} jobs, {} trace events, {} lost",
        result.outcome.end,
        result.app_stats.jobs_sent,
        result.trace.len(),
        result.measurement.total_lost(),
    );

    let report = servant_utilization(&result.trace, servants);
    println!("{report}");

    fs::write("render_parallel.ppm", result.image.to_ppm()).expect("write image");
    println!(
        "wrote render_parallel.ppm (mean luminance {:.3})",
        result.image.mean_luminance()
    );

    // A Gantt chart of a steady-state window: master plus 3 servants.
    let (from, to) = work_phase(&result.trace).expect("work phase");
    let mid = from + (to - from) / 2;
    let window_end = (mid + 2_000_000_000).min(to);
    let mut tracks = vec![master_track(&result.trace, to)];
    for s in 1..=3 {
        tracks.push(servant_track(&result.trace, s, to));
    }
    let gantt = Gantt::new(tracks, mid, window_end);
    fs::write("render_parallel_gantt.svg", gantt.render_svg()).expect("write svg");
    println!("wrote render_parallel_gantt.svg");
    println!("\n{}", gantt.render_text());

    // Parallelism profile: how many servants work concurrently over the
    // whole phase (SIMPLE's "animation", one strip-chart line).
    let all = servant_tracks(&result.trace, servants, to);
    let timeline = StateTimeline::sample(&all, "Work", from, to, (to - from) / 100);
    println!(
        "concurrent working servants over time (peak {}, mean {:.1}):",
        timeline.peak(),
        timeline.mean()
    );
    println!("{}", timeline.render_strip(servants));
}
