//! Why the ZM4 has a global clock: observe the same program with the
//! measure tick generator on and off.
//!
//! Run with: `cargo run --release --example clock_sync`

use suprenum_monitor::experiments::clock_sync_ablation;

fn main() {
    println!("running one measurement, observing it through two monitor setups...\n");
    let (sync, free) = clock_sync_ablation(7);

    println!(
        "{:<28} {:>8} {:>16} {:>18} {:>14}",
        "recorder clocks", "events", "merge inversions", "causality errors", "max ts error"
    );
    for row in [&sync, &free] {
        println!(
            "{:<28} {:>8} {:>16} {:>18} {:>11} us",
            if row.mtg_synchronized {
                "MTG-synchronized (100ns)"
            } else {
                "free-running (skewed)"
            },
            row.events,
            row.merge_violations,
            row.causality_violations,
            row.max_timestamp_error_ns as f64 / 1e3,
        );
    }

    println!(
        "\nWith the MTG, the merged trace is causally ordered and timestamps are \
         globally valid to the 100 ns resolution."
    );
    println!(
        "Without it, the CEC's timestamp merge visibly reorders events across nodes — \
         jobs appear to start before they were sent."
    );
}
