//! The paper's central debugging discovery, reproduced in isolation and
//! in the Figure 7 Gantt chart: SUPRENUM's "asynchronous" mailbox
//! communication behaves synchronously.
//!
//! Run with: `cargo run --release --example mailbox_anatomy`

use suprenum_monitor::experiments::{fig7_mailbox_gantt, mailbox_anatomy, Scale};

fn main() {
    // Microbenchmark: a single mailbox send against a busy vs. an idle
    // receiver.
    let anatomy = mailbox_anatomy(7);
    println!(
        "mailbox send blocking time (receiver computing for {}):",
        anatomy.receiver_work
    );
    println!("  receiver busy: {}", anatomy.busy_receiver_block);
    println!("  receiver idle: {}", anatomy.idle_receiver_block);
    println!(
        "  -> sending into a busy node blocks {}x longer: the mailbox LWP only runs\n\
         \x20    once the receiver relinquishes the CPU (non-preemptive round-robin)\n",
        anatomy.busy_receiver_block.as_nanos() / anatomy.idle_receiver_block.as_nanos().max(1)
    );

    // Figure 7: the same effect in the running ray tracer on two
    // processors.
    println!("reproducing Figure 7 (ray tracer on two processors, version 1)...");
    let fig7 = fig7_mailbox_gantt(1992, Scale::Paper);
    println!("{}", fig7.gantt_text);
    println!(
        "servant utilization: {:.1}% (paper: 'very good' — one servant is easy to keep busy)",
        fig7.servant_utilization_percent
    );
    println!(
        "master's Send Jobs -> Wait transition trails the servant's Work -> Wait \
         transition by a median of {:.0} us,",
        fig7.median_coupling_gap_us
    );
    println!(
        "i.e. communication latency — against a mean Work duration of {:.1} ms. \
         The transitions are synchronized,",
        fig7.mean_work_ms
    );
    println!("exactly the paper's 'very disappointing result' for mailbox communication.");
}
