//! Quickstart: monitor a small instrumented program end to end.
//!
//! Builds a 2-node SUPRENUM, runs a toy producer/consumer program
//! instrumented with `hybrid_mon` calls, probes the seven-segment
//! displays with a ZM4, and evaluates the merged trace SIMPLE-style.
//!
//! Run with: `cargo run --example quickstart`

use suprenum_monitor::des::time::{SimDuration, SimTime};
use suprenum_monitor::simple::{ActivityModel, Gantt, Trace};
use suprenum_monitor::suprenum::{
    Action, Machine, MachineConfig, Message, NodeId, ProcCtx, Process, ProcessId, Resume,
};
use suprenum_monitor::zm4::{ProbeSample, Zm4, Zm4Config};

// Instrumentation points.
const PRODUCE_BEGIN: u16 = 0x01;
const SEND_BEGIN: u16 = 0x02;
const CONSUME_BEGIN: u16 = 0x11;
const WAIT_BEGIN: u16 = 0x12;

/// Produces five items, sending each to the consumer's mailbox.
struct Producer {
    consumer: Option<ProcessId>,
    item: u32,
    phase: u8,
}

impl Process for Producer {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        if let Resume::Spawned(pid) = &why {
            self.consumer = Some(*pid);
        }
        // phase cycle: emit produce -> compute -> emit send -> send.
        let action = match self.phase {
            0 if self.consumer.is_none() => {
                return Action::Spawn {
                    node: NodeId::new(1),
                    body: Box::new(Consumer::new()),
                };
            }
            0 => Action::Emit {
                token: PRODUCE_BEGIN,
                param: self.item,
            },
            1 => Action::Compute(SimDuration::from_millis(8)),
            2 => Action::Emit {
                token: SEND_BEGIN,
                param: self.item,
            },
            _ => {
                let item = self.item;
                self.item += 1;
                self.phase = 0;
                if item > 5 {
                    return Action::Exit;
                }
                return Action::MailboxSend {
                    to: self.consumer.unwrap(),
                    msg: Message::new(ctx.pid, 64, item),
                };
            }
        };
        self.phase += 1;
        action
    }

    fn label(&self) -> String {
        "producer".into()
    }
}

/// Consumes items from its mailbox, "processing" each for 12 ms.
struct Consumer {
    phase: u8,
    item: u32,
}

impl Consumer {
    fn new() -> Self {
        Consumer { phase: 0, item: 0 }
    }
}

impl Process for Consumer {
    fn resume(&mut self, _ctx: &ProcCtx, why: Resume) -> Action {
        let action = match self.phase {
            0 => Action::Emit {
                token: WAIT_BEGIN,
                param: 0,
            },
            1 => Action::MailboxRecv,
            2 => {
                let Resume::MailboxMsg(msg) = why else {
                    unreachable!("expected item")
                };
                self.item = *msg.payload::<u32>().expect("u32 item");
                Action::Emit {
                    token: CONSUME_BEGIN,
                    param: self.item,
                }
            }
            _ => {
                self.phase = 0;
                return Action::Compute(SimDuration::from_millis(12));
            }
        };
        self.phase += 1;
        action
    }

    fn label(&self) -> String {
        "consumer".into()
    }
}

fn main() {
    // 1. Build the machine and run the instrumented program.
    let mut machine = Machine::new(MachineConfig::single_cluster(2), 42).unwrap();
    machine.add_process(
        NodeId::new(0),
        Box::new(Producer {
            consumer: None,
            item: 1,
            phase: 0,
        }),
    );
    let outcome = machine.run(SimTime::from_secs(10));
    println!("machine run: {:?} at {}", outcome.reason, outcome.end);

    // 2. Probe the displays with the ZM4.
    let samples: Vec<ProbeSample> = machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
        .collect();
    let measurement = Zm4::new(Zm4Config::default(), 2, 42).observe(&samples);
    println!(
        "ZM4 recorded {} events ({} lost, {} causality violations)",
        measurement.total_recorded(),
        measurement.total_lost(),
        measurement.causality_violations()
    );

    // 3. Evaluate the merged global trace.
    let trace: Trace = measurement
        .trace
        .iter()
        .map(|r| {
            suprenum_monitor::simple::Event::new(
                r.ts_ns,
                r.channel,
                r.event.token.value(),
                r.event.param.value(),
            )
        })
        .collect();
    let (first, last) = trace.span();

    let mut producer_model = ActivityModel::new();
    producer_model
        .state(PRODUCE_BEGIN, "Produce")
        .state(SEND_BEGIN, "Send Item");
    let mut consumer_model = ActivityModel::new();
    consumer_model
        .state(CONSUME_BEGIN, "Consume")
        .state(WAIT_BEGIN, "Wait");

    let tracks = vec![
        producer_model.derive_track("Producer", trace.channel(0).events().iter(), last),
        consumer_model.derive_track("Consumer", trace.channel(1).events().iter(), last),
    ];
    let gantt = Gantt::new(tracks, first, last);
    println!("\n{}", gantt.render_text());
    println!("(the producer's Send Item bars stretch whenever the consumer computes:");
    println!(" SUPRENUM's 'asynchronous' mailbox send is de facto synchronous)");
}
