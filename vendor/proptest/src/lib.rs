//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`],
//! * range strategies (`0u64..1000`, `-0.9f64..0.9`), [`any`],
//!   tuple strategies, [`collection::vec`], [`sample::subsequence`],
//!   [`strategy::Just`] and [`strategy::Strategy::prop_map`].
//!
//! Differences from upstream, by design: cases are generated from a
//! deterministic per-test seed (hash of the test name), and failing
//! inputs are reported but **not shrunk**. Both are acceptable for a
//! reproducibility-first simulation workspace; if real proptest becomes
//! available, deleting `crates/vendor/proptest` restores it with no
//! source changes.

pub mod test_runner {
    //! Configuration and per-case outcome types.

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the deterministic
            // suite fast while exercising every generator path.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; the case is re-drawn.
        Reject(String),
        /// A `prop_assert*!` failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure outcome.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejection outcome.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Deterministic generator driving all strategies (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a stable hash of `label` (the test
        /// name), so every test draws an independent, reproducible
        /// stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)` with 53 significant bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an associated type.
    ///
    /// Upstream proptest separates strategies from value trees to
    /// support shrinking; this stand-in does not shrink, so a strategy
    /// is simply a generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end - self.start) as u64;
                    self.start + rng.below(width) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % width) as $t
                }
            }
        )+};
    }

    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
        )+};
    }

    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )+};
    }

    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain generation for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value covering the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies over existing collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`subsequence`].
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        amount: usize,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Selection sampling (Knuth 3.4.2 Algorithm S): pick
            // exactly `amount` elements, preserving source order.
            let mut out = Vec::with_capacity(self.amount);
            let mut needed = self.amount;
            let n = self.items.len();
            for (i, item) in self.items.iter().enumerate() {
                if needed == 0 {
                    break;
                }
                let remaining = (n - i) as u64;
                if rng.below(remaining) < needed as u64 {
                    out.push(item.clone());
                    needed -= 1;
                }
            }
            out
        }
    }

    /// Generates in-order subsequences of exactly `amount` elements.
    ///
    /// # Panics
    ///
    /// Panics if `amount` exceeds `items.len()`.
    pub fn subsequence<T: Clone>(items: Vec<T>, amount: usize) -> Subsequence<T> {
        assert!(
            amount <= items.len(),
            "subsequence amount {} exceeds {} items",
            amount,
            items.len()
        );
        Subsequence { items, amount }
    }
}

pub mod prelude {
    //! Everything a property test needs, mirroring
    //! `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case
/// (with its generated inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let attempt_cap = config.cases.saturating_mul(20).max(1_000);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= attempt_cap,
                    "proptest: too many rejected cases ({accepted} accepted of {})",
                    config.cases
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "proptest case {} failed: {message}\n    inputs: {inputs}",
                            accepted + 1
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_any(pair in (any::<u16>(), 0u32..5)) {
            prop_assert!(pair.1 < 5);
        }

        #[test]
        fn assume_redraws(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Doc comments and explicit configs parse.
        #[test]
        fn configured_cases(v in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    #[test]
    fn subsequence_full_length_is_identity() {
        let mut rng = TestRng::deterministic("subseq");
        let s = crate::sample::subsequence((0u32..40).collect::<Vec<_>>(), 40);
        assert_eq!(s.generate(&mut rng), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = TestRng::deterministic("subseq-order");
        let s = crate::sample::subsequence((0u32..100).collect::<Vec<_>>(), 30);
        for _ in 0..50 {
            let sub = s.generate(&mut rng);
            assert_eq!(sub.len(), 30);
            assert!(sub.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("map");
        let s = (1u32..5).prop_map(|x| x * 10);
        for _ in 0..20 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
