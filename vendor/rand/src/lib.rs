//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact API subset* it consumes: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`) and
//! [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++
//! seeded through splitmix64 — deterministic, well-mixed, and entirely
//! sufficient for simulation draws; it makes no cryptographic claims,
//! exactly like upstream `StdRng`'s documented contract for
//! reproducibility (none across versions).
//!
//! If real `rand` ever becomes available again, deleting
//! `crates/vendor/rand` and restoring the registry dependency is the
//! whole migration: every signature here matches rand 0.8.

use std::ops::Range;

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can sample uniformly from their full domain
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 significant bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 significant bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                // Modulo with a 64-bit draw: bias is < 2^-32 for every
                // width the simulation uses; acceptable for a stand-in.
                self.start + (rng.next_u64() % width) as $t
            }
        }
    )+};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )+};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via splitmix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the sequence is stable across
    /// runs and platforms for a given seed (which is all the simulation
    /// relies on).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f64_has_sane_mean() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
