//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`Throughput`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Instead of criterion's statistical analysis, each benchmark runs a
//! short warm-up followed by `sample_size` timed batches and reports
//! min/median wall-clock time per iteration (plus throughput when
//! configured). That keeps `cargo bench` useful for coarse comparisons
//! and keeps all bench targets compiling and runnable offline.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            throughput: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, settings: &Settings, mut routine: F) {
    // Calibrate the per-sample iteration count so one sample takes
    // roughly 25 ms (bounded to keep total runtime sane).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(25).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut per_iter_nanos: Vec<u128> = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() / iters as u128);
    }
    per_iter_nanos.sort_unstable();
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let min = per_iter_nanos[0];

    let throughput = match settings.throughput {
        Some(Throughput::Elements(n)) if median > 0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median as f64)
        }
        Some(Throughput::Bytes(n)) if median > 0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / median as f64)
        }
        _ => String::new(),
    };
    println!(
        "{id:<48} median {:>12} ns/iter  (min {min} ns, {} samples x {iters} iters){throughput}",
        median,
        per_iter_nanos.len()
    );
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the throughput reported alongside timings.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.settings.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), &self.settings, routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        run_one(id, &Settings::default(), routine);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: Settings::default(),
            _criterion: self,
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark targets.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
        Criterion::default().bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
