//! Integration of the monitoring chain itself: instrumentation →
//! display signals → detector → recorder → CEC merge → evaluation.

use suprenum_monitor::des::time::{SimDuration, SimTime};
use suprenum_monitor::hybridmon::MonitoringMode;
use suprenum_monitor::suprenum::{
    Action, Machine, MachineConfig, NodeId, ProcCtx, Process, Resume, RunEnd,
};
use suprenum_monitor::zm4::{ProbeSample, Zm4, Zm4Config};

/// A process that emits `count` events with its node id in the token and
/// a sequence number in the parameter, separated by compute phases.
struct Beeper {
    node: u16,
    count: u32,
    sent: u32,
    emitting: bool,
}

impl Process for Beeper {
    fn resume(&mut self, _ctx: &ProcCtx, _why: Resume) -> Action {
        if self.emitting {
            self.emitting = false;
            Action::Compute(SimDuration::from_millis(2))
        } else if self.sent < self.count {
            self.emitting = true;
            let param = self.sent;
            self.sent += 1;
            Action::Emit {
                token: 0x0100 | self.node,
                param,
            }
        } else {
            Action::Exit
        }
    }

    fn label(&self) -> String {
        format!("beeper-{}", self.node)
    }
}

/// A root process that spawns beepers on every other node, then beeps
/// itself.
struct Root {
    nodes: u16,
    spawned: u16,
    inner: Beeper,
}

impl Process for Root {
    fn resume(&mut self, ctx: &ProcCtx, why: Resume) -> Action {
        if self.spawned + 1 < self.nodes {
            self.spawned += 1;
            return Action::Spawn {
                node: NodeId::new(self.spawned),
                body: Box::new(Beeper {
                    node: self.spawned,
                    count: self.inner.count,
                    sent: 0,
                    emitting: false,
                }),
            };
        }
        // Give remote beepers time to finish before the initial process
        // exits and terminates the application.
        if self.inner.sent == self.inner.count && !self.inner.emitting {
            self.inner.sent += 1; // run the grace sleep only once
            return Action::Sleep(SimDuration::from_secs(1));
        }
        if self.inner.sent > self.inner.count {
            return Action::Exit;
        }
        self.inner.resume(ctx, why)
    }

    fn label(&self) -> String {
        "root".into()
    }
}

fn run_beepers(nodes: u16, events_per_node: u32, seed: u64) -> (Machine, Vec<ProbeSample>) {
    let mut machine = Machine::new(MachineConfig::single_cluster(nodes as u8), seed).unwrap();
    machine.add_process(
        NodeId::new(0),
        Box::new(Root {
            nodes,
            spawned: 0,
            inner: Beeper {
                node: 0,
                count: events_per_node,
                sent: 0,
                emitting: false,
            },
        }),
    );
    let outcome = machine.run(SimTime::from_secs(60));
    assert_eq!(outcome.reason, RunEnd::Completed);
    let samples = machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
        .collect();
    (machine, samples)
}

#[test]
fn every_emitted_event_is_recorded_exactly_once() {
    let (machine, samples) = run_beepers(8, 25, 4);
    assert_eq!(machine.stats().events_emitted, 8 * 25);
    let m = Zm4::new(Zm4Config::default(), 8, 4).observe(&samples);
    assert_eq!(m.total_recorded(), 8 * 25);
    assert_eq!(m.total_lost(), 0);
    // Per channel: 25 events with sequential parameters.
    for ch in 0..8usize {
        let params: Vec<u32> = m
            .trace
            .iter()
            .filter(|r| r.channel == ch)
            .map(|r| r.event.param.value())
            .collect();
        assert_eq!(
            params,
            (0..25).collect::<Vec<_>>(),
            "channel {ch} events broken"
        );
    }
}

#[test]
fn merged_trace_is_globally_ordered_with_mtg() {
    let (_machine, samples) = run_beepers(6, 20, 1);
    let m = Zm4::new(Zm4Config::default(), 6, 1).observe(&samples);
    assert_eq!(m.causality_violations(), 0);
    assert!(m.trace.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    // Timestamps track true global time to the clock resolution.
    assert!(m.max_timestamp_error_ns() <= 100);
}

#[test]
fn recorder_assignment_spreads_channels() {
    let zm4 = Zm4::new(Zm4Config::default(), 16, 1);
    assert_eq!(zm4.recorders(), 4);
    assert_eq!(zm4.agents(), 1);
    // The paper's full 256-node machine needs 64 recorders on 16 agents.
    let big = Zm4::new(Zm4Config::default(), 256, 1);
    assert_eq!(big.recorders(), 64);
    assert_eq!(big.agents(), 16);
}

#[test]
fn event_detectors_tolerate_interleaved_nodes() {
    // Concurrent nodes interleave in the global signal log; the per-node
    // detectors must not interfere.
    let (_machine, samples) = run_beepers(4, 50, 2);
    // Shuffle the global order (channels interleave arbitrarily) — the
    // monitor sorts per channel internally.
    let mut shuffled = samples.clone();
    shuffled.reverse();
    let a = Zm4::new(Zm4Config::default(), 4, 2).observe(&samples);
    let b = Zm4::new(Zm4Config::default(), 4, 2).observe(&shuffled);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.total_recorded(), 200);
    for d in &a.detector_stats {
        assert_eq!(d.atomicity_violations, 0);
    }
}

#[test]
fn software_monitoring_vs_hybrid_timestamp_quality() {
    // The same program observed via hybrid monitoring (global clock) and
    // via software monitoring (skewed node clocks): only the former
    // merges causally.
    let seed = 99;
    let (machine, samples) = run_beepers(6, 20, seed);
    let hybrid = Zm4::new(Zm4Config::default(), 6, seed).observe(&samples);
    assert_eq!(hybrid.causality_violations(), 0);

    // Software monitoring run of the same program.
    let mut cfg = MachineConfig::single_cluster(6);
    cfg.monitoring = MonitoringMode::Software;
    let mut sw_machine = Machine::new(cfg, seed).unwrap();
    sw_machine.add_process(
        NodeId::new(0),
        Box::new(Root {
            nodes: 6,
            spawned: 0,
            inner: Beeper {
                node: 0,
                count: 20,
                sent: 0,
                emitting: false,
            },
        }),
    );
    assert_eq!(
        sw_machine.run(SimTime::from_secs(60)).reason,
        RunEnd::Completed
    );
    let logs: Vec<_> = sw_machine
        .software_monitors()
        .iter()
        .map(|m| m.records().to_vec())
        .collect();
    let merged = suprenum_monitor::hybridmon::software::merge_by_local_ts(&logs);
    let inversions = suprenum_monitor::hybridmon::software::count_order_inversions(&merged);
    assert!(
        inversions > 0,
        "software monitoring with skewed node clocks should mis-order the merge"
    );
    let _ = machine;
}

#[test]
fn terminal_interface_monitoring_also_works_but_slower() {
    // The rejected alternative: the same program monitored over the V.24
    // serial interface. The trace is equally decodable — the cost is the
    // perturbation of the measured program.
    let seed = 21;
    let run_with = |mode: MonitoringMode| {
        let mut cfg = MachineConfig::single_cluster(4);
        cfg.monitoring = mode;
        let mut m = Machine::new(cfg, seed).unwrap();
        m.add_process(
            NodeId::new(0),
            Box::new(Root {
                nodes: 4,
                spawned: 0,
                inner: Beeper {
                    node: 0,
                    count: 15,
                    sent: 0,
                    emitting: false,
                },
            }),
        );
        let out = m.run(SimTime::from_secs(60));
        assert_eq!(out.reason, RunEnd::Completed);
        (m, out.end)
    };

    let (hybrid_machine, hybrid_end) = run_with(MonitoringMode::Hybrid);
    let (terminal_machine, terminal_end) = run_with(MonitoringMode::Terminal);

    // Decode the serial streams.
    let serial_samples: Vec<suprenum_monitor::zm4::SerialSample> = terminal_machine
        .signals()
        .terminal_writes()
        .iter()
        .map(|w| suprenum_monitor::zm4::SerialSample {
            time: w.time,
            channel: w.node.index() as usize,
            byte: w.byte,
        })
        .collect();
    let serial_events = suprenum_monitor::zm4::detect_serial(&serial_samples, 4);
    assert_eq!(
        serial_events.len(),
        4 * 15,
        "every event decodes from the serial stream"
    );

    // Same logical events as the hybrid path.
    let hybrid_samples: Vec<ProbeSample> = hybrid_machine
        .signals()
        .display_writes()
        .iter()
        .map(|w| ProbeSample {
            time: w.time,
            channel: w.node.index() as usize,
            pattern: w.pattern,
        })
        .collect();
    let hybrid_events = Zm4::new(Zm4Config::default(), 4, seed).observe(&hybrid_samples);
    let mut a: Vec<(usize, u16, u32)> = serial_events
        .iter()
        .map(|e| (e.channel, e.event.token.value(), e.event.param.value()))
        .collect();
    let mut b: Vec<(usize, u16, u32)> = hybrid_events
        .trace
        .iter()
        .map(|r| (r.channel, r.event.token.value(), r.event.param.value()))
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "both channels carry the same logical events");

    // But the terminal path perturbs the program measurably: the root
    // emits 15 events on its critical path, each ~2.8 ms more expensive
    // over the serial line than via the display.
    let extra_ns = terminal_end.as_nanos() - hybrid_end.as_nanos();
    assert!(
        extra_ns > 35_000_000,
        "terminal monitoring should cost ≥35 ms extra on the critical path \
         (hybrid {hybrid_end}, terminal {terminal_end})"
    );
}

#[test]
fn analysis_survives_fifo_event_loss() {
    // Failure injection: an undersized recorder FIFO loses events under
    // load. The evaluation pipeline must degrade gracefully — derived
    // activities and utilization still compute, and the causality check
    // reports the instrumentation gaps instead of panicking.
    use suprenum_monitor::raysim::analysis::{causality_rules, servant_utilization};
    use suprenum_monitor::raysim::config::{AppConfig, SceneKind, Version};
    use suprenum_monitor::raysim::run::{run, RunConfig};
    use suprenum_monitor::simple::check_causality;

    let mut app = AppConfig::version(Version::V2);
    app.servants = 4;
    app.scene = SceneKind::Quickstart;
    app.width = 16;
    app.height = 16;
    app.pixel_queue_capacity = 64;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    // Starve the recorder: tiny FIFO, glacial drain.
    cfg.zm4.fifo_capacity = 8;
    cfg.zm4.disk_drain_rate = 200;
    let result = run(cfg);
    assert!(
        result.completed(),
        "the *application* is unaffected by monitor loss"
    );
    assert!(
        result.measurement.total_lost() > 0,
        "the stress must actually lose events"
    );

    // The trace still analyzes.
    let report = servant_utilization(&result.trace, 4);
    assert!(report.mean > 0.0 && report.mean <= 1.0);
    let causality = check_causality(&result.trace, &causality_rules());
    assert_eq!(
        causality.causality_violations, 0,
        "loss must not fake causality errors"
    );
    assert!(
        causality.unmatched_effects > 0 || !result.trace.is_empty(),
        "lost causes surface as unmatched effects"
    );
}
