//! End-to-end integration: the full pipeline from instrumented
//! application through the hardware monitor to evaluated results, with
//! the monitor's view validated against the simulator's ground truth.

use suprenum_monitor::des::time::SimTime;
use suprenum_monitor::raysim::analysis::{
    causality_rules, servant_track, servant_utilization, work_phase,
};
use suprenum_monitor::raysim::config::{AppConfig, SceneKind, Version};
use suprenum_monitor::raysim::run::{run, RunConfig};
use suprenum_monitor::raysim::tokens;
use suprenum_monitor::simple::check_causality;
use suprenum_monitor::suprenum::ProcState;

fn small_run(version: Version, seed: u64) -> suprenum_monitor::raysim::run::RunResult {
    let mut app = AppConfig::version(version);
    app.servants = 4;
    app.scene = SceneKind::Quickstart;
    app.width = 16;
    app.height = 16;
    app.bundle_size = app.bundle_size.min(4);
    app.pixel_queue_capacity = 64;
    app.write_chunk = 4;
    let mut cfg = RunConfig::new(app);
    cfg.seed = seed;
    cfg.horizon = SimTime::from_secs(36_000);
    run(cfg)
}

#[test]
fn run_completes_and_renders_the_image() {
    let result = small_run(Version::V2, 9);
    assert!(result.completed());
    // All 256 pixels written with actual scene content.
    assert_eq!(result.image.pixel_count(), 256);
    assert!(
        result.image.mean_luminance() > 0.05,
        "image is black — pixels lost"
    );
    // Every job produced a result.
    assert_eq!(
        result.app_stats.jobs_sent,
        result.app_stats.results_received
    );
    assert!(result.app_stats.disk_writes > 0);
}

#[test]
fn parallel_render_matches_sequential_render() {
    let result = small_run(Version::V4, 5);
    assert!(result.completed());
    // Render the same image sequentially with the same tracer settings.
    let (scene, camera) = suprenum_monitor::raytracer::scenes::quickstart_scene();
    let tracer = suprenum_monitor::raytracer::Tracer::new(
        &scene,
        suprenum_monitor::raytracer::TraceConfig::default(),
    );
    for y in 0..16 {
        for x in 0..16 {
            let (expected, _) = tracer.render_pixel(&camera, x, y, 16, 16, 1);
            let got = result.image.get(x, y);
            assert_eq!(
                got.to_rgb8(),
                expected.to_rgb8(),
                "pixel ({x},{y}) differs from the sequential render"
            );
        }
    }
}

#[test]
fn monitor_trace_is_causally_clean() {
    let result = small_run(Version::V3, 12);
    assert!(result.completed());
    let report = check_causality(&result.trace, &causality_rules());
    assert!(
        report.is_clean(),
        "violations in MTG-synchronized trace: {report:?}"
    );
    assert!(report.pairs_checked > 0);
    assert_eq!(
        result.measurement.total_lost(),
        0,
        "event rate must not overflow the FIFO"
    );
    for d in &result.measurement.detector_stats {
        assert_eq!(d.atomicity_violations, 0, "display protocol violated");
    }
}

#[test]
fn monitor_view_matches_ground_truth() {
    // The Work activity derived from the hybrid-monitoring trace must
    // agree with the kernel's true Running time of the servant process,
    // up to instrumentation granularity. Version 2 is used because its
    // "Send Results Begin" point closes the Work state precisely —
    // version 1's uninstrumented result send is *included* in derived
    // Work, which is exactly the measurement artifact the paper fixed
    // between Figures 7/8 and Figure 9.
    let result = small_run(Version::V2, 3);
    assert!(result.completed());
    let (from, to) = work_phase(&result.trace).unwrap();

    let track = servant_track(&result.trace, 1, to);
    let monitored_work_ns = track.time_in_state_within("Work", from, to);

    // Ground truth: servant-1's Running time over the same window. The
    // monitored "Work" state contains the trace-compute and the emit
    // call itself; tolerance covers instrumentation edges.
    let gt = result.machine.ground_truth();
    let (pid, hist) = gt
        .iter()
        .find(|(_, h)| h.label == "servant-1")
        .expect("servant-1 in ground truth");
    let _ = pid;
    let total_running = hist
        .time_in(SimTime::from_nanos(to), |s| s == ProcState::Running)
        .as_nanos();
    let running_before_phase = hist
        .time_in(SimTime::from_nanos(from), |s| s == ProcState::Running)
        .as_nanos();
    let true_running_ns = total_running - running_before_phase;

    let rel_err =
        (monitored_work_ns as f64 - true_running_ns as f64).abs() / true_running_ns.max(1) as f64;
    assert!(
        rel_err < 0.15,
        "monitored Work {monitored_work_ns} ns vs true Running {true_running_ns} ns \
         (rel err {rel_err:.3})"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let a = small_run(Version::V2, 77);
    let b = small_run(Version::V2, 77);
    assert_eq!(a.outcome.end, b.outcome.end);
    assert_eq!(a.trace.len(), b.trace.len());
    for (x, y) in a.trace.events().iter().zip(b.trace.events()) {
        assert_eq!(x, y);
    }
    assert_eq!(a.image, b.image);

    // A different seed still completes but yields a different timeline
    // when stochastic elements exist; with none, the timeline may match —
    // just assert it completes.
    let c = small_run(Version::V2, 78);
    assert!(c.completed());
}

#[test]
fn servant_utilization_is_sane_at_small_scale() {
    let result = small_run(Version::V2, 21);
    let report = servant_utilization(&result.trace, 4);
    assert!(
        report.mean > 0.02 && report.mean < 1.0,
        "utilization {}",
        report.mean
    );
    // Every servant did some work.
    for (name, u) in &report.per_track {
        assert!(*u > 0.0, "{name} never worked");
    }
}

#[test]
fn window_flow_control_is_respected() {
    // With window 2 the master may never have more than 2 outstanding
    // jobs per servant: count via SEND/RECEIVE event interleaving.
    let mut app = AppConfig::version(Version::V2);
    app.servants = 2;
    app.window = 2;
    app.scene = SceneKind::Quickstart;
    app.width = 8;
    app.height = 8;
    app.pixel_queue_capacity = 64;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());

    // Outstanding jobs overall never exceed servants x window.
    let mut outstanding: i64 = 0;
    for e in result.trace.events() {
        match e.token.value() {
            t if t == tokens::SEND_JOBS_BEGIN => {
                outstanding += 1;
                assert!(outstanding <= 4, "window flow control violated");
            }
            t if t == tokens::RECEIVE_RESULTS_BEGIN => outstanding -= 1,
            _ => {}
        }
    }
}

#[test]
fn ray_tracer_spans_clusters_over_the_torus() {
    // Two clusters joined by the SUPRENUM token ring: servants 16..20
    // live in the second cluster, so their jobs and results cross the
    // inter-cluster path. Everything must still complete, render
    // correctly and trace cleanly.
    let mut app = AppConfig::version(Version::V3);
    app.servants = 20;
    app.scene = SceneKind::Quickstart;
    app.width = 16;
    app.height = 16;
    app.bundle_size = 4;
    app.pixel_queue_capacity = 256;
    app.write_chunk = 8;
    let mut cfg = RunConfig::new(app);
    cfg.machine = suprenum_monitor::suprenum::MachineConfig {
        clusters: 2,
        torus_cols: 1,
        ..suprenum_monitor::suprenum::MachineConfig::single_cluster(16)
    };
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());
    assert!(result.image.mean_luminance() > 0.05);
    // Inter-cluster messages actually flowed.
    let ic = result.machine.interconnect_stats();
    assert!(
        ic.inter_cluster_transfers > 0,
        "no traffic crossed the torus"
    );
    assert!(ic.intra_cluster_transfers > 0);
    // Remote-cluster servants did real work.
    let (_, to) = work_phase(&result.trace).unwrap();
    for servant in [17u32, 20] {
        let track = servant_track(&result.trace, servant, to);
        assert!(
            track.time_in_state("Work") > 0,
            "cluster-1 servant {servant} never worked"
        );
    }
    // And the trace is still causally clean end to end.
    let report = check_causality(&result.trace, &causality_rules());
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn object_partitioning_renders_the_same_image() {
    use suprenum_monitor::raysim::objpart::{run_object_partitioned, ObjPartConfig};
    let mut app = AppConfig::version(Version::V1);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 12;
    app.height = 12;
    let cfg = ObjPartConfig::new(app);
    let r = run_object_partitioned(cfg, 7, SimTime::from_secs(36_000));
    assert!(r.completed(), "{:?}", r.outcome);
    assert!(
        r.rounds >= 2,
        "Whitted needs multiple wavefront generations"
    );
    // Memory argument: each servant held about a third of the geometry.
    assert!(
        r.max_objects_per_servant <= 2,
        "quickstart has 4 primitives over 3 partitions"
    );

    // Pixel-exact against the sequential tracer.
    let (scene, camera) = suprenum_monitor::raytracer::scenes::quickstart_scene();
    let tracer = suprenum_monitor::raytracer::Tracer::new(
        &scene,
        suprenum_monitor::raytracer::TraceConfig::default(),
    );
    for y in 0..12 {
        for x in 0..12 {
            let (expected, _) = tracer.render_pixel(&camera, x, y, 12, 12, 1);
            assert_eq!(
                r.image.get(x, y).to_rgb8(),
                expected.to_rgb8(),
                "pixel ({x},{y}) differs under object partitioning"
            );
        }
    }
}

#[test]
fn oversampling_is_organized_by_the_master() {
    // Paper §4.2: "An oversampling scheme, in which more than one ray is
    // computed per pixel ... is also organized by the master." The
    // parallel render with 2x2 oversampling must equal the sequential
    // 2x2-oversampled render, and differ from the non-oversampled one.
    let mut app = AppConfig::version(Version::V4);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 12;
    app.height = 12;
    app.oversample = 2;
    app.bundle_size = 8;
    app.pixel_queue_capacity = 144;
    app.write_chunk = 16;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());

    let (scene, camera) = suprenum_monitor::raytracer::scenes::quickstart_scene();
    let tracer = suprenum_monitor::raytracer::Tracer::new(
        &scene,
        suprenum_monitor::raytracer::TraceConfig::default(),
    );
    let mut any_differs_from_1x = false;
    for y in 0..12 {
        for x in 0..12 {
            let (expected, _) = tracer.render_pixel(&camera, x, y, 12, 12, 2);
            assert_eq!(
                result.image.get(x, y).to_rgb8(),
                expected.to_rgb8(),
                "pixel ({x},{y}) differs from sequential 2x2 oversampling"
            );
            let (plain, _) = tracer.render_pixel(&camera, x, y, 12, 12, 1);
            if plain.to_rgb8() != expected.to_rgb8() {
                any_differs_from_1x = true;
            }
        }
    }
    assert!(
        any_differs_from_1x,
        "oversampling had no visible effect anywhere"
    );
}

#[test]
fn servants_render_from_a_scene_description_file() {
    // The servants' initialization reads "the scene description file";
    // feed the pipeline a serialized description and verify the render.
    use suprenum_monitor::raytracer::sdl;
    let (scene, _) = suprenum_monitor::raytracer::scenes::quickstart_scene();
    let spec = sdl::CameraSpec {
        eye: suprenum_monitor::raytracer::Vec3::new(0.0, 1.0, 2.0),
        target: suprenum_monitor::raytracer::Vec3::new(0.0, 0.0, -6.0),
        up: suprenum_monitor::raytracer::Vec3::new(0.0, 1.0, 0.0),
        fov_deg: 55.0,
        aspect: 1.0,
    };
    let text = sdl::serialize(&scene, &spec);

    let mut app = AppConfig::version(Version::V2);
    app.servants = 2;
    app.scene = SceneKind::from_description(text.clone());
    app.width = 10;
    app.height = 10;
    app.pixel_queue_capacity = 100;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());

    // Compare against rendering the parsed description sequentially.
    let desc = sdl::parse(&text).unwrap();
    let tracer = suprenum_monitor::raytracer::Tracer::new(
        &desc.scene,
        suprenum_monitor::raytracer::TraceConfig::default(),
    );
    for y in 0..10 {
        for x in 0..10 {
            let (expected, _) = tracer.render_pixel(&desc.camera, x, y, 10, 10, 1);
            assert_eq!(result.image.get(x, y).to_rgb8(), expected.to_rgb8());
        }
    }
}

#[test]
fn partial_bundles_cover_ragged_images() {
    // 15x15 = 225 pixels with bundle 16: the last job is a partial
    // bundle of 1 pixel. Nothing may be lost or duplicated.
    let mut app = AppConfig::version(Version::V4);
    app.servants = 3;
    app.scene = SceneKind::Quickstart;
    app.width = 15;
    app.height = 15;
    app.bundle_size = 16;
    app.pixel_queue_capacity = 225;
    app.write_chunk = 16;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());
    assert_eq!(
        result.app_stats.jobs_sent,
        225f64.div_euclid(16.0) as u64 + 1
    );
    assert!(result.image.mean_luminance() > 0.05);
}

#[test]
fn write_chunk_larger_than_image_still_flushes() {
    // The in-order write trigger never fires on size alone; the final
    // flush (everything computed, nothing writable yet) must handle it.
    let mut app = AppConfig::version(Version::V2);
    app.servants = 2;
    app.scene = SceneKind::Quickstart;
    app.width = 8;
    app.height = 8;
    app.pixel_queue_capacity = 64;
    app.write_chunk = 10_000;
    let mut cfg = RunConfig::new(app);
    cfg.horizon = SimTime::from_secs(36_000);
    let result = run(cfg);
    assert!(result.completed());
    assert_eq!(result.app_stats.disk_writes, 1, "one final flush expected");
    assert!(result.image.mean_luminance() > 0.05);
}
