//! Shape tests for the paper's evaluation results at quick scale: the
//! qualitative findings must hold even on shrunk workloads.

use suprenum_monitor::experiments::{
    complex_scene, fig10_versions, fig7_mailbox_gantt, fig9_agents, Scale,
};

#[test]
fn fig7_transitions_are_synchronized() {
    let fig7 = fig7_mailbox_gantt(1992, Scale::Quick);
    // One servant is easy to keep busy.
    assert!(
        fig7.servant_utilization_percent > 80.0,
        "2-processor servant utilization {:.1}%",
        fig7.servant_utilization_percent
    );
    // The master's send completes in lockstep with the servant leaving
    // Work: the gap is communication latency, orders below work scale.
    assert!(
        fig7.median_coupling_gap_us * 1e-3 < fig7.mean_work_ms / 5.0,
        "coupling gap {:.0}us not small vs work {:.1}ms",
        fig7.median_coupling_gap_us,
        fig7.mean_work_ms
    );
    // The chart shows both bands.
    assert!(fig7.gantt_text.contains("== Master =="));
    assert!(fig7.gantt_text.contains("Send Jobs"));
    assert!(fig7.gantt_text.contains("Work"));
}

#[test]
fn fig10_ladder_is_monotone() {
    let rows = fig10_versions(1992, Scale::Quick);
    assert_eq!(rows.len(), 4);
    // The paper's headline: every version improves on its predecessor.
    for pair in rows.windows(2) {
        assert!(
            pair[1].measured_percent > pair[0].measured_percent,
            "{} ({:.1}%) did not improve on {} ({:.1}%)",
            pair[1].version,
            pair[1].measured_percent,
            pair[0].version,
            pair[0].measured_percent
        );
    }
    // And the total improvement is substantial (paper: 4x).
    let gain = rows[3].measured_percent / rows[0].measured_percent;
    assert!(gain > 1.8, "V4/V1 gain only {gain:.2}x");
}

#[test]
fn fig9_agents_cycle_and_decouple() {
    let fig9 = fig9_agents(1992, Scale::Quick);
    assert!(fig9.agent_pool_size >= 1);
    // "The time an agent spends in the Freed state is extremely short":
    // microseconds, versus forwards that absorb mailbox blocking.
    assert!(
        fig9.mean_freed_us < 1_000.0,
        "Freed state {:.0}us is not short",
        fig9.mean_freed_us
    );
    assert!(fig9.mean_forward_ms * 1_000.0 > fig9.mean_freed_us);
    assert!(fig9.gantt_text.contains("Agent 0"));
    assert!(fig9.gantt_text.contains("Forward Message"));
}

#[test]
fn complex_scene_reaches_high_utilization() {
    let result = complex_scene(1992, Scale::Quick);
    // Paper: >99% on the fractal pyramid. At quick scale the drain tail
    // weighs more; the steady phase must still be near-saturated.
    assert!(
        result.steady_percent > 90.0,
        "complex-scene steady utilization {:.1}%",
        result.steady_percent
    );
    // And clearly above the moderate scene's V4 value.
    assert!(result.steady_percent > result.paper_percent);
}
